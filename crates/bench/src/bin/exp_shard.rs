//! The reproduction's shard-scaling experiment (no paper counterpart):
//! scatter-gather throughput of the [`ShardRouter`] versus the
//! sequential [`Server`] on the same request stream, across shard
//! counts and both transports.
//!
//! Four measurements on an emulated GOWALLA subset:
//!
//! 1. **Sequential baseline** — the one-at-a-time `Server::serve` loop.
//! 2. **Throughput vs shards** — the same stream scattered across
//!    1/2/4/`--shards` thread-transport shards, every response verified
//!    bit-identical to the sequential baseline.
//! 3. **Process transport** — the same stream through `snaple-shardd`
//!    child processes (frames over pipes), verified bit-identical; its
//!    cost over the thread transport is the serialization + pipe tax.
//! 4. **Broadcast update** — a churn delta broadcast mid-stream; rows
//!    served afterwards verified against a cold rebuild on the mutated
//!    graph.
//!
//! Exit-code enforced (when the host has at least as many cores as
//! shards — parallel speedup is physically impossible below that, so
//! smaller hosts enforce a degradation floor instead): the largest
//! thread-shard deployment must reach at least the single-shard
//! router's throughput, and (full runs) >= 1.5x over it at 4 shards.

use std::process::exit;
use std::time::Instant;

use snaple_bench::{append_bench_json, churn_delta};
use snaple_core::serve::Server;
use snaple_core::shard::{PendingRows, ShardOptions, ShardRouter, ShardSpec, ShardTransport};
use snaple_core::{NamedScore, Prediction, QuerySet, Snaple, SnapleConfig};
use snaple_eval::TextTable;
use snaple_gas::ClusterSpec;
use snaple_graph::gen::datasets;

struct Args {
    scale: f64,
    seed: u64,
    quick: bool,
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        seed: 42,
        quick: false,
        shards: 4,
    };
    let mut it = std::env::args().skip(1);
    let usage = |error: &str| -> ! {
        if !error.is_empty() {
            eprintln!("error: {error}\n");
        }
        eprintln!("exp-shard — scatter-gather shard serving vs the sequential server");
        eprintln!();
        eprintln!("usage: exp-shard [--scale F] [--seed N] [--shards N] [--quick]");
        eprintln!("  --scale F   multiply the dataset scale by F (default 1.0)");
        eprintln!("  --seed N    base random seed (default 42)");
        eprintln!("  --shards N  largest shard count to measure (default 4)");
        eprintln!("  --quick     reduced stream for smoke runs");
        exit(if error.is_empty() { 0 } else { 2 })
    };
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--scale" => {
                args.scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage("invalid --scale"))
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("invalid --seed"))
            }
            "--shards" => {
                args.shards = value("--shards")
                    .parse()
                    .unwrap_or_else(|_| usage("invalid --shards"))
            }
            "--quick" => args.quick = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if args.shards == 0 || args.scale <= 0.0 {
        usage("--shards and --scale must be positive");
    }
    args
}

fn verify_rows(requests: &[QuerySet], got: &[Prediction], want: &[Prediction], label: &str) {
    for (request, (g, w)) in requests.iter().zip(got.iter().zip(want)) {
        for q in request.iter() {
            if g.for_vertex(q) != w.for_vertex(q) {
                eprintln!("FAIL: {label}: row {q} diverged from the sequential server");
                exit(1);
            }
        }
    }
}

fn main() {
    let args = parse_args();
    println!("=== exp-shard — shard-per-process distributed serving ===");
    println!(
        "scale multiplier {:.3}, seed {}, quick={}, max shards {}",
        args.scale, args.seed, args.quick, args.shards
    );
    println!();

    let base_scale = if args.quick { 0.004 } else { 0.01 };
    let graph = datasets::GOWALLA.emulate(base_scale * args.scale, args.seed);
    let cluster = ClusterSpec::type_ii(args.shards.max(8));
    let num_requests = if args.quick { 24 } else { 80 };
    let per_request = (graph.num_vertices() / 100).max(1);
    let requests: Vec<QuerySet> = (0..num_requests)
        .map(|i| QuerySet::sample(graph.num_vertices(), per_request, args.seed + i as u64))
        .collect();
    let config = SnapleConfig::new(NamedScore::LinearSum)
        .klocal(Some(20))
        .seed(args.seed);
    let snaple = Snaple::new(config.clone());
    let spec = ShardSpec::Single(config);
    println!(
        "gowalla emulation: {} vertices, {} edges; {} requests of {} queries; \
         {} cluster partitions",
        graph.num_vertices(),
        graph.num_edges(),
        num_requests,
        per_request,
        cluster.nodes,
    );

    // --- 1. Sequential baseline: one request at a time. ------------------
    let mut sequential = Server::new(&snaple, &graph, &cluster).expect("prepare");
    let started = Instant::now();
    let expected: Vec<Prediction> = requests
        .iter()
        .map(|q| sequential.serve(q).expect("serve"))
        .collect();
    let sequential_wall = started.elapsed().as_secs_f64();
    let sequential_rps = num_requests as f64 / sequential_wall;
    sequential.stats().write_bench_json("exp-shard-sequential");

    let mut table = TextTable::new(vec![
        "configuration",
        "req/s",
        "speedup",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
    ]);
    table.row(vec![
        "sequential Server".into(),
        format!("{sequential_rps:.1}"),
        "1.00x".into(),
        format!("{:.2}", sequential.stats().latency.p50() * 1e3),
        format!("{:.2}", sequential.stats().latency.p95() * 1e3),
        format!("{:.2}", sequential.stats().latency.p99() * 1e3),
    ]);

    // --- 2 & 3. Throughput vs shards, on both transports. ----------------
    let mut run_sharded = |shards: usize, transport: ShardTransport, label: &str| -> f64 {
        let outcome = ShardRouter::run(
            &spec,
            &graph,
            &cluster,
            ShardOptions::new().shards(shards).transport(transport),
            |handle| {
                let pending: Vec<PendingRows> = requests
                    .iter()
                    .map(|q| handle.submit(q).expect("submit"))
                    .collect();
                pending
                    .into_iter()
                    .map(|p| p.wait().expect("response"))
                    .collect::<Vec<Prediction>>()
            },
        )
        .expect("sharded run");
        verify_rows(&requests, &outcome.value, &expected, label);
        let stats = &outcome.stats;
        let rps = num_requests as f64 / stats.serve_wall_seconds.max(1e-9);
        let speedup = rps / sequential_rps;
        table.row(vec![
            label.to_string(),
            format!("{rps:.1}"),
            format!("{speedup:.2}x"),
            format!("{:.2}", stats.latency.p50() * 1e3),
            format!("{:.2}", stats.latency.p95() * 1e3),
            format!("{:.2}", stats.latency.p99() * 1e3),
        ]);
        stats.write_bench_json(&format!(
            "exp-shard-{}{shards}",
            match transport {
                ShardTransport::Threads => "t",
                ShardTransport::Processes => "p",
            }
        ));
        speedup
    };

    let mut shard_counts = vec![1, 2, 4];
    shard_counts.retain(|&s| s <= cluster.nodes);
    if !shard_counts.contains(&args.shards) {
        shard_counts.push(args.shards);
    }
    let mut speedup_1 = f64::NAN;
    let mut speedup_4 = 0.0;
    let mut speedup_max = 0.0;
    for &shards in &shard_counts {
        let speedup = run_sharded(
            shards,
            ShardTransport::Threads,
            &format!("ShardRouter x{shards} (threads)"),
        );
        if shards == 1 {
            speedup_1 = speedup;
        }
        if shards == 4 {
            speedup_4 = speedup;
        }
        if shards == args.shards {
            speedup_max = speedup;
        }
    }
    // One process-transport point: same frames over pipes, plus the
    // fork/exec + serialization tax.
    let proc_shards = args.shards.min(if args.quick { 2 } else { 4 });
    let speedup_procs = run_sharded(
        proc_shards,
        ShardTransport::Processes,
        &format!("ShardRouter x{proc_shards} (snaple-shardd processes)"),
    );
    println!("{}", table.render());

    // --- 4. Broadcast update mid-stream. ---------------------------------
    let delta = churn_delta(&graph, 0.01, args.seed ^ 0xc0c);
    let mutated = graph.compact(&delta);
    let mut cold = Server::new(&snaple, &mutated, &cluster).expect("cold prepare");
    let post_request = QuerySet::sample(graph.num_vertices(), per_request, args.seed ^ 0x9e);
    let outcome = ShardRouter::run(
        &spec,
        &graph,
        &cluster,
        ShardOptions::new()
            .shards(shard_counts.last().copied().unwrap_or(1))
            .transport(ShardTransport::Threads),
        |handle| {
            let half = requests.len() / 2;
            for q in &requests[..half] {
                handle.serve(q).expect("pre-delta serve");
            }
            let applied = handle.apply_update(&delta).expect("broadcast update");
            println!(
                "broadcast update: +{} -{} edges, {} partitions touched per shard, \
                 {:.1} ms (slowest shard)",
                applied.inserted_edges,
                applied.removed_edges,
                applied.touched_partitions,
                applied.apply_wall_seconds * 1e3,
            );
            handle.serve(&post_request).expect("post-delta serve")
        },
    )
    .expect("update run");
    let expected_post = cold.serve(&post_request).expect("cold serve");
    for q in post_request.iter() {
        if outcome.value.for_vertex(q) != expected_post.for_vertex(q) {
            eprintln!("FAIL: post-broadcast row {q} diverged from a cold rebuild");
            exit(1);
        }
    }
    outcome.stats.write_bench_json("exp-shard-broadcast-update");
    // Scaling is judged against the single-shard router (same codepath,
    // no scatter width), so the bar isolates the multi-shard win from
    // the router's own constant costs.
    let vs_single_4 = speedup_4 / speedup_1;
    let vs_single_max = speedup_max / speedup_1;
    append_bench_json(&format!(
        "{{\"name\":\"exp-shard-summary\",\"sequential_rps\":{sequential_rps:.2},\
         \"speedup_t4\":{speedup_4:.3},\"speedup_max\":{speedup_max:.3},\
         \"vs_single_t4\":{vs_single_4:.3},\"vs_single_max\":{vs_single_max:.3},\
         \"speedup_procs\":{speedup_procs:.3},\"max_shards\":{}}}",
        args.shards
    ));

    // --- Enforcement. ----------------------------------------------------
    // Shard speedup is parallel speedup: with fewer hardware cores than
    // shards it is physically unreachable, so the throughput bars apply
    // only when the host can express them. Bit-identity (checked above,
    // unconditionally) and a degradation floor are enforced everywhere.
    println!();
    let cores = snaple_gas::host_parallelism();
    if cores >= args.shards.min(4) {
        if vs_single_max < 1.0 {
            eprintln!(
                "FAIL: {} thread shards reach only {vs_single_max:.2}x of the \
                 single-shard router's throughput on {cores} cores (must be >= 1x)",
                args.shards
            );
            exit(1);
        }
        if !args.quick && vs_single_4 < 1.5 {
            eprintln!(
                "FAIL: 4 thread shards reach only {vs_single_4:.2}x of the \
                 single-shard router's throughput on {cores} cores (acceptance \
                 bar: >= 1.5x on the full stream)"
            );
            exit(1);
        }
    } else {
        println!(
            "note: only {cores} hardware core(s) — the parallel throughput bars \
             (>= 1x quick, >= 1.5x at 4 shards full, vs the single-shard router) \
             need at least {} cores and are not enforced; enforcing the \
             degradation floor instead",
            args.shards.min(4)
        );
        let best = vs_single_max.max(vs_single_4);
        if best < 0.2 {
            eprintln!(
                "FAIL: multi-shard serving reaches only {best:.2}x of the \
                 single-shard router even at its best deployment — overhead \
                 beyond the scatter-gather tax (floor: 0.2x)"
            );
            exit(1);
        }
    }
    println!(
        "PASS: bit-identical on both transports; {speedup_4:.2}x at 4 thread shards, \
         {speedup_max:.2}x at {}, {speedup_procs:.2}x over {proc_shards} shard processes \
         ({cores} core(s){})",
        args.shards,
        if args.quick {
            ", quick mode"
        } else {
            ", full bars"
        }
    );
}
