//! Reproduces **Figure 9** — sensitivity of recall to the number of
//! returned predictions `k ∈ {5, 10, 15, 20}` (with `klocal = 80`) on
//! livejournal and pokec, for the five Sum-family scores.
//!
//! Because top-`k` prediction lists nest, each (dataset, score) pair runs
//! once with `k = 20` and the smaller `k` values are evaluated by
//! truncation — equivalent to the paper's per-`k` runs.

use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_core::{NamedScore, Snaple, SnapleConfig};
use snaple_eval::{metrics, Runner, TextTable};
use snaple_gas::ClusterSpec;

const KS: [usize; 4] = [5, 10, 15, 20];

fn main() {
    let args = ExpArgs::parse("exp-fig9", "Figure 9: recall as k grows");
    banner("exp-fig9", "paper Figure 9 (§5.8)", &args);

    let klocal = if args.quick { 20 } else { 80 };
    let scores: Vec<NamedScore> = if args.quick {
        vec![NamedScore::LinearSum, NamedScore::Counter]
    } else {
        NamedScore::sum_family().to_vec()
    };

    let mut table = TextTable::new(vec!["dataset", "score", "k=5", "k=10", "k=15", "k=20"]);
    for name in ["livejournal", "pokec"] {
        let ds = dataset(&args, name);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);
        let cluster = scaled_cluster(ClusterSpec::type_i(32), &ds);
        for &score in &scores {
            let config = SnapleConfig::new(score)
                .k(*KS.last().expect("nonempty"))
                .klocal(Some(klocal))
                .seed(args.seed);
            let req = snaple_core::PredictRequest::new(runner.train_graph(), &cluster);
            let prediction = match snaple_core::Predictor::predict(&Snaple::new(config), &req) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("warning: {name}/{}: {e}", score.name());
                    continue;
                }
            };
            let mut cells = vec![(*name).to_owned(), score.name().to_owned()];
            for k in KS {
                cells.push(format!(
                    "{:.3}",
                    metrics::recall_at_k(&prediction, &holdout, k)
                ));
            }
            table.row(cells);
        }
    }
    emit(&args, "fig9", &table);
    println!("expected shape: recall increases substantially with k (paper §5.8).");
}
