//! Reproduces **Table 6** — SNAPLE vs the best single-machine
//! configuration: on one type-II node, SNAPLE with `klocal = 20` against
//! the best random-walk PPR trade-off found in Figure 11 (`w = 100, d = 3`
//! for livejournal; the paper's twitter-rv pick is also `w`-limited).
//!
//! Also reports the paper's closing comparison (§5.9): the distributed
//! 256-core SNAPLE run that matches Cassovary's twitter-rv recall, and its
//! speedup.

use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple_core::{NamedScore, Snaple, SnapleConfig};
use snaple_eval::table::{fmt_recall, fmt_seconds};
use snaple_eval::{Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-table6",
        "Table 6: SNAPLE vs a state-of-the-art single-machine solution",
    );
    banner("exp-table6", "paper Table 6 (§5.9)", &args);

    let machine = ClusterSpec::single_machine(20, 128 << 30);
    let mut table = TextTable::new(vec![
        "dataset",
        "CASSOVARY recall",
        "CASSOVARY time(s)",
        "SNAPLE recall",
        "SNAPLE time(s)",
        "speedup",
    ]);

    let mut twitter_cassovary_recall = 0.0;
    for name in ["livejournal", "twitter-rv"] {
        let ds = dataset(&args, name);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);

        // Best Cassovary trade-off from the Figure 11 sweep — the paper
        // settles on w = 100 for livejournal and needs w = 1000 on
        // twitter-rv to reach competitive recall (its Table 6 entry).
        let (w, d) = if args.quick {
            (50, 3)
        } else if *name == *"twitter-rv" {
            (1000, 3)
        } else {
            (100, 3)
        };
        let cass = runner.run(
            &format!("PPR w={w} d={d}"),
            &RandomWalkPpr::new(RandomWalkConfig::new().walks(w).depth(d).seed(args.seed)),
            &runner.request(&machine),
        );
        if *name == *"twitter-rv" {
            twitter_cassovary_recall = cass.recall;
        }

        let snaple = runner.run(
            "linearSum klocal=20",
            &Snaple::new(
                SnapleConfig::new(NamedScore::LinearSum)
                    .klocal(Some(20))
                    .seed(args.seed),
            ),
            &runner.request(&machine),
        );

        table.row(vec![
            (*name).to_owned(),
            fmt_recall(cass.recall),
            fmt_seconds(cass.simulated_seconds),
            fmt_recall(snaple.recall),
            fmt_seconds(snaple.simulated_seconds),
            format!(
                "{:.2}",
                cass.simulated_seconds / snaple.simulated_seconds.max(1e-9)
            ),
        ]);
    }
    emit(&args, "table6", &table);

    // The paper's closing claim: on 256 cores, SNAPLE with klocal = 5
    // reaches Cassovary's twitter-rv recall with a large speedup.
    let ds = dataset(&args, "twitter-rv");
    let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
    let runner = Runner::new(&holdout);
    let cluster = scaled_cluster(ClusterSpec::type_i(32), &ds);
    let distributed = runner.run(
        "linearSum klocal=5 @256 cores",
        &Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .klocal(Some(5))
                .seed(args.seed),
        ),
        &runner.request(&cluster),
    );
    println!(
        "distributed check (paper: 30.6x speedup at matching recall):\n\
         SNAPLE klocal=5 on 256 type-I cores: recall {} vs Cassovary's {} \n\
         in {} simulated seconds",
        fmt_recall(distributed.recall),
        fmt_recall(twitter_cassovary_recall),
        fmt_seconds(distributed.simulated_seconds),
    );
}
