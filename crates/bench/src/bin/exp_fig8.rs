//! Reproduces **Figure 8** — computing time against recall for the full
//! scoring design space: all eleven Table-3 configurations grouped by
//! aggregator (Sum / Mean / Geom), for `klocal ∈ {5, 10, 20, 40, 80}`, on
//! livejournal and twitter-rv at 256 type-I cores.
//!
//! Each printed row is one point of the paper's scatter plots; the series
//! key is (aggregator family, score), the x-axis the simulated time and
//! the y-axis recall.

use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_core::{NamedScore, Snaple, SnapleConfig};
use snaple_eval::table::fmt_seconds;
use snaple_eval::{Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-fig8",
        "Figure 8: recall vs computing time across scoring configurations",
    );
    banner("exp-fig8", "paper Figure 8 (§5.7)", &args);

    let klocals: &[usize] = if args.quick {
        &[5, 20, 80]
    } else {
        &[5, 10, 20, 40, 80]
    };
    let datasets: &[&str] = if args.quick {
        &["livejournal"]
    } else {
        &["livejournal", "twitter-rv"]
    };

    let mut table = TextTable::new(vec![
        "dataset",
        "aggregator",
        "score",
        "klocal",
        "sim time (s)",
        "recall",
    ]);

    for name in datasets {
        let ds = dataset(&args, name);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);
        // See exp-fig6: recall sweeps use type-II nodes to keep the
        // twitter-scale runs inside the scaled memory budget.
        let cluster = scaled_cluster(ClusterSpec::type_ii(8), &ds);

        let families: [(&str, Vec<NamedScore>); 3] = [
            ("Sum", NamedScore::sum_family().to_vec()),
            ("Mean", NamedScore::mean_family().to_vec()),
            ("Geom", NamedScore::geom_family().to_vec()),
        ];
        for (family, scores) in families {
            for score in scores {
                for &klocal in klocals {
                    let config = SnapleConfig::new(score)
                        .klocal(Some(klocal))
                        .seed(args.seed);
                    let m = runner.run(
                        score.name(),
                        &Snaple::new(config),
                        &runner.request(&cluster),
                    );
                    let (time, recall) = if m.outcome.is_completed() {
                        (fmt_seconds(m.simulated_seconds), format!("{:.3}", m.recall))
                    } else {
                        ("OOM".into(), "-".into())
                    };
                    table.row(vec![
                        (*name).to_owned(),
                        family.to_owned(),
                        score.name().to_owned(),
                        klocal.to_string(),
                        time,
                        recall,
                    ]);
                }
            }
        }
    }
    emit(&args, "fig8", &table);
    println!(
        "expected shape: the Sum aggregator reaches the highest recall and\n\
         keeps improving with klocal; Mean is competitive at small klocal;\n\
         Geom trails (paper §5.7)."
    );
}
