//! The reproduction's own serving experiment (no paper counterpart):
//! what a request stream costs through one-shot `predict` versus the
//! prepare-once [`Server`], on an emulated GOWALLA subset.
//!
//! Every one-shot run rebuilds the O(edges) vertex-cut partition; a
//! served stream builds it once and coalesces batches into shared masked
//! supersteps. The table surfaces exactly the columns
//! [`snaple_eval::Measurement`] records for this — partition-build
//! milliseconds and replication factor — so the amortization win is
//! visible next to the usual recall/time numbers.

use snaple_bench::{append_bench_json, banner, dataset, emit, ExpArgs};
use snaple_core::serve::Server;
use snaple_core::{NamedScore, QuerySet, Snaple, SnapleConfig};
use snaple_eval::table::{fmt_millis, fmt_recall, fmt_seconds};
use snaple_eval::{Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-serve",
        "Serving: prepare-once amortization over a request stream",
    );
    banner(
        "exp-serve",
        "the serving extension (§2.2 motivation)",
        &args,
    );

    let ds = dataset(&args, "gowalla");
    let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
    let runner = Runner::new(&holdout);
    let cluster = ClusterSpec::type_ii(4);
    let graph = runner.train_graph();
    let num_requests = if args.quick { 10 } else { 100 };
    let per_request = (graph.num_vertices() / 100).max(1);
    let requests: Vec<QuerySet> = (0..num_requests)
        .map(|i| QuerySet::sample(graph.num_vertices(), per_request, args.seed + i as u64))
        .collect();
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .klocal(Some(20))
            .seed(args.seed),
    );

    let mut table = TextTable::new(vec![
        "run",
        "recall",
        "sim time (s)",
        "partition (ms)",
        "repl",
    ]);

    // Reference: one all-vertices batch refresh, measured by the Runner.
    let batch = runner.run("all-vertices", &snaple, &runner.request(&cluster));
    table.row(vec![
        "all-vertices one-shot".into(),
        fmt_recall(batch.recall),
        fmt_seconds(batch.simulated_seconds),
        fmt_millis(batch.partition_seconds),
        format!("{:.2}", batch.replication_factor),
    ]);

    // The stream through one-shot predicts: every request re-partitions.
    let mut one_shot_sim = 0.0;
    let mut one_shot_partition = 0.0;
    for (i, q) in requests.iter().enumerate() {
        let m = runner.run(
            &format!("one-shot #{i}"),
            &snaple,
            &runner.request(&cluster).with_queries(q),
        );
        one_shot_sim += m.simulated_seconds;
        one_shot_partition += m.partition_seconds;
    }
    table.row(vec![
        format!("{num_requests} one-shot 1% requests"),
        "-".into(),
        fmt_seconds(one_shot_sim),
        fmt_millis(one_shot_partition),
        format!("{:.2}", batch.replication_factor),
    ]);

    // The same stream through the serve layer: one partition build.
    let mut server = Server::new(&snaple, graph, &cluster).expect("prepare");
    let batch_size = if args.quick { 5 } else { 10 };
    for chunk in requests.chunks(batch_size) {
        server.serve_batch(chunk).expect("serve batch");
    }
    let stats = server.stats();
    table.row(vec![
        format!("served stream (batches of {batch_size})"),
        "-".into(),
        fmt_seconds(stats.simulated_seconds),
        fmt_millis(stats.partition_build_seconds),
        format!("{:.2}", stats.replication_factor),
    ]);

    emit(&args, "serve-amortization", &table);
    println!(
        "partition builds: {num_requests} one-shots paid {} ms, the served \
         stream paid {} ms once ({:.0} requests/s, coalescing {:.2}x)",
        fmt_millis(one_shot_partition),
        fmt_millis(stats.partition_build_seconds),
        stats.throughput_rps(),
        stats.coalescing_factor(),
    );
    append_bench_json(&stats.to_bench_json("exp-serve/served-stream"));
}
