//! `exp-streaming` — incremental graph updates vs full re-prepare.
//!
//! The paper's motivating deployment continuously ingests new follow
//! edges while serving recommendations. This experiment measures the two
//! ways a prepared deployment can absorb a batch of edge churn:
//!
//! 1. **full re-prepare** — rebuild the mutated graph from its edge list
//!    and run a cold `Deployment::new` (O(edges) repartition);
//! 2. **incremental apply** — `Deployment::apply_delta`: a linear
//!    `CsrGraph::compact` merge plus re-routing only the vertex-cut
//!    partitions the delta touches.
//!
//! For every churn level the two paths are *verified equivalent*: SNAPLE
//! predictions on the incrementally-updated deployment must be
//! bit-identical to a cold rebuild on the mutated graph — the experiment
//! exits non-zero on any divergence, which is what the CI
//! `streaming-smoke` step asserts. Timings and speedups land in
//! `BENCH_JSON` when set.

use std::process::exit;
use std::time::Instant;

use snaple_bench::{append_bench_json, banner, churn_delta, emit, ExpArgs};
use snaple_core::{
    ExecuteRequest, NamedScore, Predictor, PrepareRequest, QuerySet, Snaple, SnapleConfig,
};
use snaple_eval::table::fmt_millis;
use snaple_eval::TextTable;
use snaple_gas::{ClusterSpec, Deployment};
use snaple_graph::gen::datasets;
use snaple_graph::{CsrGraph, GraphBuilder};

/// The cold path a delta-less system pays: rebuild the mutated graph
/// from raw edges (as if re-ingesting the edge list) and repartition.
fn full_reprepare(
    mutated_edges: &[(u32, u32)],
    num_vertices: usize,
    cluster: &ClusterSpec,
    seed: u64,
) -> (CsrGraph, f64) {
    let started = Instant::now();
    let mut b = GraphBuilder::with_capacity(mutated_edges.len());
    b.reserve_vertices(num_vertices);
    for &(u, v) in mutated_edges {
        b.add_edge(u, v);
    }
    let graph = b.build();
    let deployment = Deployment::new(
        &graph,
        cluster.clone(),
        snaple_gas::PartitionStrategy::RandomVertexCut,
        seed,
    )
    .expect("rebuild deployment");
    let seconds = started.elapsed().as_secs_f64();
    drop(deployment);
    (graph, seconds)
}

fn main() {
    let args = ExpArgs::parse(
        "exp-streaming",
        "incremental delta ingestion vs full re-prepare on a growing graph",
    );
    banner(
        "exp-streaming",
        "the streaming-update extension (delta ingestion with in-place refresh)",
        &args,
    );

    let scale = if args.quick { 0.004 } else { 0.1 } * args.scale;
    let graph = datasets::GOWALLA.emulate(scale, args.seed);
    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(20))
            .seed(args.seed),
    );
    println!(
        "gowalla@{scale:.3}: {} vertices, {} edges, {} cluster\n",
        graph.num_vertices(),
        graph.num_edges(),
        cluster.name
    );

    let churns: &[f64] = if args.quick {
        &[0.01]
    } else {
        &[0.001, 0.01, 0.05]
    };
    let mut table = TextTable::new(vec![
        "churn",
        "delta edges",
        "incremental apply",
        "full re-prepare",
        "speedup",
        "partitions touched",
        "rows",
    ]);
    let mut any_divergence = false;
    let queries = QuerySet::sample(graph.num_vertices(), (graph.num_vertices() / 20).max(1), 11);

    let reps = if args.quick { 2 } else { 5 };
    for &churn in churns {
        let delta = churn_delta(&graph, churn, args.seed ^ 0x57);
        let base_deployment = Deployment::new(
            &graph,
            cluster.clone(),
            snaple_gas::PartitionStrategy::RandomVertexCut,
            args.seed,
        )
        .expect("base deployment");

        // --- Incremental path: prepare once, apply the delta in place.
        // Applying is destructive, so each rep starts from a clone (the
        // clone is outside the timed window); report the best rep to
        // shed allocator warm-up noise.
        let mut incremental_seconds = f64::MAX;
        let mut deployment = base_deployment.clone();
        let mut applied = deployment.apply_delta(&delta).expect("apply delta");
        incremental_seconds = incremental_seconds.min(applied.apply_wall_seconds);
        for _ in 1..reps {
            let mut fresh = base_deployment.clone();
            applied = fresh.apply_delta(&delta).expect("apply delta");
            incremental_seconds = incremental_seconds.min(applied.apply_wall_seconds);
        }

        // --- Cold path: rebuild edge list + graph + partition. ----------
        let mutated_edges: Vec<(u32, u32)> = snaple_graph::store::edges(deployment.graph())
            .map(|(u, v)| (u.as_u32(), v.as_u32()))
            .collect();
        let mut rebuild_seconds = f64::MAX;
        let mut cold_graph = None;
        for _ in 0..reps {
            let (g, secs) = full_reprepare(
                &mutated_edges,
                deployment.graph().num_vertices(),
                &cluster,
                args.seed,
            );
            rebuild_seconds = rebuild_seconds.min(secs);
            cold_graph = Some(g);
        }
        let cold_graph = cold_graph.expect("at least one rebuild rep");

        // --- Equivalence: incremental rows == cold-rebuild rows. --------
        let incremental = snaple
            .execute_on(&deployment, &ExecuteRequest::new().with_queries(&queries))
            .expect("incremental execute");
        let prepared = snaple
            .prepare(&PrepareRequest::new(&cold_graph, &cluster))
            .expect("cold prepare");
        let cold = prepared
            .execute(&ExecuteRequest::new().with_queries(&queries))
            .expect("cold execute");
        let mut rows_checked = 0usize;
        for q in queries.iter() {
            if incremental.for_vertex(q) != cold.for_vertex(q) {
                eprintln!("DIVERGENCE at churn {churn}: row {q} differs from cold rebuild");
                any_divergence = true;
            }
            rows_checked += 1;
        }

        let speedup = rebuild_seconds / incremental_seconds.max(1e-12);
        let delta_edges = applied.inserted_edges + applied.removed_edges;
        table.row(vec![
            format!("{:.2}%", churn * 100.0),
            delta_edges.to_string(),
            fmt_millis(incremental_seconds),
            fmt_millis(rebuild_seconds),
            format!("{speedup:.1}x"),
            applied.touched_partitions.to_string(),
            format!("{rows_checked} identical"),
        ]);
        append_bench_json(&format!(
            "{{\"name\":\"streaming/incremental-vs-reprepare/churn-{churn}\",\
             \"delta_edges\":{delta_edges},\
             \"incremental_seconds\":{incremental_seconds:.6},\
             \"reprepare_seconds\":{rebuild_seconds:.6},\
             \"speedup\":{speedup:.3},\
             \"touched_partitions\":{}}}",
            applied.touched_partitions
        ));
    }

    emit(&args, "streaming", &table);
    if any_divergence {
        eprintln!("FAILED: incremental apply diverged from a cold rebuild");
        exit(1);
    }
    println!("equivalence: all queried rows bit-identical to a cold rebuild");
}
