//! Reproduces **Table 4** — the dataset inventory — and documents the
//! emulation each dataset gets in this repository: published size, scaled
//! size, and the structural properties (degree tail, reciprocity,
//! clustering) the emulators target.

use rand::rngs::StdRng;
use rand::SeedableRng;

use snaple_bench::{banner, dataset, emit, ExpArgs};
use snaple_eval::TextTable;
use snaple_graph::stats::GraphSummary;

fn main() {
    let args = ExpArgs::parse("exp-table4", "Table 4: the datasets used in the evaluation");
    banner("exp-table4", "paper Table 4 (§5.2)", &args);

    let mut published = TextTable::new(vec!["dataset", "|V|", "|E|", "domain"]);
    let mut emulated = TextTable::new(vec![
        "dataset",
        "scale",
        "|V| emu",
        "|E| emu",
        "mean deg",
        "max deg",
        "reciprocity",
        "clustering",
    ]);

    for name in ["gowalla", "pokec", "orkut", "livejournal", "twitter-rv"] {
        let ds = dataset(&args, name);
        published.row(vec![
            ds.spec.name.into(),
            fmt_count(ds.spec.vertices),
            fmt_count(ds.spec.listed_edges),
            ds.spec.domain.into(),
        ]);

        let graph = ds.load(args.seed);
        let mut rng = StdRng::seed_from_u64(args.seed);
        let summary = GraphSummary::compute(&graph, if args.quick { 200 } else { 1_000 }, &mut rng);
        emulated.row(vec![
            ds.spec.name.into(),
            format!("{:.4}", ds.scale),
            summary.vertices.to_string(),
            summary.edges.to_string(),
            format!("{:.1}", summary.out_degree.mean),
            summary.out_degree.max.to_string(),
            format!("{:.2}", summary.reciprocity),
            format!("{:.3}", summary.clustering),
        ]);
    }

    println!("published sizes (paper Table 4):");
    emit(&args, "table4-published", &published);
    println!("emulated stand-ins used by this reproduction:");
    emit(&args, "table4-emulated", &emulated);
}

fn fmt_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else {
        format!("{:.2}M", n as f64 / 1e6)
    }
}
