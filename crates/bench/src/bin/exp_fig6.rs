//! Reproduces **Figure 6** — the effect of the truncation threshold `thrΓ`:
//!
//! * 6a–c: out-degree CDFs of orkut, livejournal and twitter-rv, sampled at
//!   the candidate thresholds {10, 20, 40, 80, 100};
//! * 6d: relative recall improvement over `thrΓ = 10` for the same
//!   thresholds (linearSum, `klocal = 80`).
//!
//! The paper's observation: once `thrΓ` covers ≈80% of the vertices, recall
//! stops improving.

use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_core::{NamedScore, Snaple, SnapleConfig};
use snaple_eval::{Runner, TextTable};
use snaple_gas::ClusterSpec;
use snaple_graph::stats::degree_coverage;
use snaple_graph::Direction;

const THRESHOLDS: [usize; 5] = [10, 20, 40, 80, 100];

fn main() {
    let args = ExpArgs::parse(
        "exp-fig6",
        "Figure 6: degree CDFs and recall sensitivity to thrΓ",
    );
    banner("exp-fig6", "paper Figure 6 (§5.5)", &args);

    let datasets: &[&str] = if args.quick {
        &["livejournal"]
    } else {
        &["orkut", "livejournal", "twitter-rv"]
    };

    // 6a–c: CDF coverage at each threshold.
    let mut cdf = TextTable::new(vec![
        "dataset",
        "thrΓ=10",
        "thrΓ=20",
        "thrΓ=40",
        "thrΓ=80",
        "thrΓ=100",
    ]);
    for name in datasets {
        let ds = dataset(&args, name);
        let graph = ds.load(args.seed);
        let mut row = vec![(*name).to_owned()];
        for thr in THRESHOLDS {
            row.push(format!(
                "{:.1}%",
                100.0 * degree_coverage(&graph, Direction::Out, thr)
            ));
        }
        cdf.row(row);
    }
    println!("share of vertices with out-degree <= thrΓ (Figure 6a–c):");
    emit(&args, "fig6-cdf", &cdf);

    // 6d: recall improvement relative to thrΓ = 10.
    let klocal = if args.quick { 20 } else { 80 };
    let mut recall_table = TextTable::new(vec!["dataset", "thrΓ", "recall", "improvement %"]);
    for name in datasets {
        let ds = dataset(&args, name);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);
        // Recall experiments run on type-II nodes: the paper's 256-core
        // type-I deployment is memory-tight at tiny dataset scales (state
        // per vertex does not shrink with scale), and cluster choice does
        // not affect recall.
        let cluster = scaled_cluster(ClusterSpec::type_ii(8), &ds);
        let mut base_recall = None;
        for thr in THRESHOLDS {
            let config = SnapleConfig::new(NamedScore::LinearSum)
                .klocal(Some(klocal))
                .thr_gamma(Some(thr))
                .seed(args.seed);
            let m = runner.run("linearSum", &Snaple::new(config), &runner.request(&cluster));
            if !m.outcome.is_completed() {
                recall_table.row(vec![
                    (*name).to_owned(),
                    thr.to_string(),
                    "OOM".into(),
                    "-".into(),
                ]);
                continue;
            }
            let base = *base_recall.get_or_insert(m.recall);
            recall_table.row(vec![
                (*name).to_owned(),
                thr.to_string(),
                format!("{:.3}", m.recall),
                format!("{:+.1}", 100.0 * (m.recall / base.max(1e-9) - 1.0)),
            ]);
        }
    }
    println!("relative recall improvement over thrΓ = 10 (Figure 6d, klocal = {klocal}):");
    emit(&args, "fig6-recall", &recall_table);
}
