//! `exp-durable` — the price and the payoff of restartable serving.
//!
//! The durable serving extension (`snaple-store`) puts an fsync'd
//! commitlog append in front of every `apply_update` and a compacted
//! snapshot every K updates. This experiment measures both sides of the
//! bargain:
//!
//! 1. **logging overhead** — the same update stream through an
//!    ephemeral [`Server`], a `--fsync batch` durable server and a
//!    `--fsync always` durable server; reported as absolute per-delta
//!    time and as a multiple of the ephemeral path;
//! 2. **recovery time vs log length** — reopen a data dir whose
//!    commitlog holds N un-snapshotted frames and time
//!    snapshot-load + replay, for growing N;
//! 3. **bit-identity** — served rows after every durable run and after
//!    every recovery must equal the ephemeral oracle's; the experiment
//!    exits non-zero on any divergence, which is what the CI
//!    `durability-smoke` step asserts.
//!
//! [`Server`]: snaple_core::serve::Server

use std::fs;
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use snaple_bench::{append_bench_json, banner, churn_delta, emit, ExpArgs};
use snaple_core::serve::Server;
use snaple_core::{NamedScore, QuerySet, Snaple, SnapleConfig};
use snaple_eval::table::fmt_millis;
use snaple_eval::TextTable;
use snaple_gas::ClusterSpec;
use snaple_graph::gen::datasets;
use snaple_graph::{io, CsrGraph, GraphDelta};
use snaple_store::{Durability, DurabilityOptions, FsyncPolicy};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snaple-exp-durable-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn graph_bytes(g: &CsrGraph) -> Vec<u8> {
    let mut out = Vec::new();
    io::write_binary(g, &mut out).expect("in-memory serialize");
    out
}

/// One run of the update stream + final serve through a [`Server`],
/// optionally durable. Returns (total apply seconds, served rows).
fn run_stream(
    server: &mut Server<'_>,
    deltas: &[GraphDelta],
    queries: &QuerySet,
) -> (f64, snaple_core::Prediction) {
    let started = Instant::now();
    for delta in deltas {
        server.apply_update(delta).expect("apply_update");
    }
    let apply_seconds = started.elapsed().as_secs_f64();
    let rows = server.serve(queries).expect("serve");
    (apply_seconds, rows)
}

fn main() {
    let args = ExpArgs::parse(
        "exp-durable",
        "commitlog overhead and recovery latency of restartable serving",
    );
    banner(
        "exp-durable",
        "the durable serving extension (snaple-store commitlog + snapshots)",
        &args,
    );

    let scale = if args.quick { 0.004 } else { 0.05 } * args.scale;
    let graph = datasets::GOWALLA.emulate(scale, args.seed);
    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(20))
            .seed(args.seed),
    );
    println!(
        "gowalla@{scale:.3}: {} vertices, {} edges, {} cluster\n",
        graph.num_vertices(),
        graph.num_edges(),
        cluster.name
    );

    let n_deltas = if args.quick { 16 } else { 64 };
    let deltas: Vec<GraphDelta> = (0..n_deltas)
        .map(|i| churn_delta(&graph, 0.002, args.seed ^ (0x0d + i as u64)))
        .collect();
    let queries = QuerySet::sample(graph.num_vertices(), (graph.num_vertices() / 20).max(1), 11);
    let mut any_divergence = false;

    // ---- Part 1: apply_update overhead, ephemeral vs durable. ----------
    let mut table = TextTable::new(vec![
        "mode",
        "deltas",
        "apply total",
        "per delta",
        "overhead",
        "fsyncs",
        "snapshots",
        "rows",
    ]);

    let mut ephemeral = Server::new(&snaple, &graph, &cluster).expect("ephemeral prepare");
    let (ephemeral_seconds, oracle_rows) = run_stream(&mut ephemeral, &deltas, &queries);
    table.row(vec![
        "ephemeral".into(),
        n_deltas.to_string(),
        fmt_millis(ephemeral_seconds),
        fmt_millis(ephemeral_seconds / n_deltas as f64),
        "1.0x".into(),
        "0".into(),
        "0".into(),
        "oracle".into(),
    ]);

    for (mode, policy) in [
        ("durable/batch", FsyncPolicy::Batch),
        ("durable/always", FsyncPolicy::Always),
    ] {
        let dir = scratch(mode.rsplit('/').next().unwrap_or("mode"));
        let opts = DurabilityOptions::default()
            .fsync(policy)
            .snapshot_every(n_deltas / 4)
            .retain(2);
        let (durable, recovered, _) =
            Durability::open(&dir, &graph, b"exp-durable", opts).expect("fresh open");
        assert!(recovered.is_none(), "scratch dir must start empty");
        let mut server = Server::new(&snaple, &graph, &cluster).expect("durable prepare");
        server.attach_durability(durable);
        let (durable_seconds, rows) = run_stream(&mut server, &deltas, &queries);
        server.sync_durability().expect("final sync");
        let stats = server
            .stats()
            .durability
            .clone()
            .expect("durable server stats");

        let mut rows_checked = 0usize;
        for q in queries.iter() {
            if rows.for_vertex(q) != oracle_rows.for_vertex(q) {
                eprintln!("DIVERGENCE [{mode}]: row {q} differs from the ephemeral oracle");
                any_divergence = true;
            }
            rows_checked += 1;
        }
        let overhead = durable_seconds / ephemeral_seconds.max(1e-12);
        table.row(vec![
            mode.into(),
            n_deltas.to_string(),
            fmt_millis(durable_seconds),
            fmt_millis(durable_seconds / n_deltas as f64),
            format!("{overhead:.2}x"),
            stats.fsyncs.to_string(),
            stats.snapshots_written.to_string(),
            format!("{rows_checked} identical"),
        ]);
        append_bench_json(&format!(
            "{{\"name\":\"durable/apply-overhead/{mode}\",\
             \"deltas\":{n_deltas},\
             \"ephemeral_seconds\":{ephemeral_seconds:.6},\
             \"durable_seconds\":{durable_seconds:.6},\
             \"overhead\":{overhead:.3},\
             \"fsyncs\":{},\
             \"snapshots\":{},\
             \"logged_bytes\":{}}}",
            stats.fsyncs, stats.snapshots_written, stats.logged_bytes
        ));
        fs::remove_dir_all(&dir).ok();
    }
    emit(&args, "durable-overhead", &table);

    // ---- Part 2: recovery time vs log length. --------------------------
    // Snapshot cadence is pushed past the stream length so the whole log
    // replays: this times the worst case (pure replay); a snapshot only
    // ever shortens it.
    let mut table = TextTable::new(vec![
        "log frames",
        "log bytes",
        "open+replay",
        "per frame",
        "state",
    ]);
    let lengths: &[usize] = if args.quick { &[4, 16] } else { &[8, 32, 128] };
    for &n in lengths {
        let dir = scratch(&format!("recover-{n}"));
        let opts = DurabilityOptions::default()
            .fsync(FsyncPolicy::Batch)
            .snapshot_every(n * 2)
            .retain(2);
        let stream: Vec<GraphDelta> = (0..n)
            .map(|i| churn_delta(&graph, 0.002, args.seed ^ (0xbeef + i as u64)))
            .collect();
        {
            let (mut durable, _, _) =
                Durability::open(&dir, &graph, b"exp-durable", opts.clone()).expect("fresh open");
            for delta in &stream {
                durable.record(delta).expect("record");
            }
            durable.sync().expect("sync");
        } // drop = the crash: no clean shutdown handshake
        let log_bytes = fs::metadata(dir.join(snaple_store::log::LOG_FILE))
            .expect("log metadata")
            .len();

        let started = Instant::now();
        let (_durable, recovered, report) =
            Durability::open(&dir, &graph, b"exp-durable", opts).expect("recovery open");
        let state = recovered.expect("prior state");
        let mut effective = state.graph;
        for delta in &state.replay {
            effective = effective.compact(delta);
        }
        let recover_seconds = started.elapsed().as_secs_f64();

        let mut oracle = graph.clone();
        for delta in &stream {
            oracle = oracle.compact(delta);
        }
        let identical = graph_bytes(&effective) == graph_bytes(&oracle);
        if !identical {
            eprintln!("DIVERGENCE: {n}-frame recovery is not bit-identical to the oracle graph");
            any_divergence = true;
        }
        table.row(vec![
            format!("{} replayed", report.frames_replayed),
            log_bytes.to_string(),
            fmt_millis(recover_seconds),
            fmt_millis(recover_seconds / n as f64),
            if identical {
                "bit-identical".into()
            } else {
                "DIVERGED".into()
            },
        ]);
        append_bench_json(&format!(
            "{{\"name\":\"durable/recovery/frames-{n}\",\
             \"frames_replayed\":{},\
             \"log_bytes\":{log_bytes},\
             \"recover_seconds\":{recover_seconds:.6},\
             \"bit_identical\":{identical}}}",
            report.frames_replayed
        ));
        fs::remove_dir_all(&dir).ok();
    }
    emit(&args, "durable-recovery", &table);

    if any_divergence {
        eprintln!("FAILED: a durable or recovered state diverged from the ephemeral oracle");
        exit(1);
    }
    println!("equivalence: all durable runs and recoveries bit-identical to the ephemeral oracle");
}
