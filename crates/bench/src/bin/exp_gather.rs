//! `exp-gather` — the gather hot path, scalar vs vectorized.
//!
//! SNAPLE's fused sweep spends its time intersecting sorted adjacency
//! lists. This experiment isolates that hot path as a gather micro over
//! an emulated Orkut graph (the densest of the paper's Table 4 datasets,
//! mean degree ≈ 145): every vertex scores its whole out-neighbor
//! run, exactly the stripe shape `PlanSimilarityStep::gather_run` hands
//! to the kernels. Two implementations race:
//!
//! 1. **scalar baseline** — per-pair scoring over
//!    [`intersection_size_scalar`] (the linear merge, no galloping, no
//!    block path);
//! 2. **striped** — [`Similarity::score_stripe`] over the dispatching
//!    [`intersection_size`](snaple_core::similarity::intersection_size)
//!    (galloping for skewed pairs, the block-compare path under
//!    `--features simd`), on a hub-first degree-relabeled graph
//!    ([`Relabeling::degree_order`]) so hot rows share cache lines.
//!
//! Both paths fold every score's bit pattern into an order-insensitive
//! checksum; Jaccard and common-neighbor counts are isomorphism
//! invariants, so the checksums must match bitwise even across the
//! relabeling — the experiment exits non-zero on any mismatch, and (on
//! `--features simd` builds) on a striped/scalar speedup below the
//! enforced floor: 2.0x full, 1.3x for `--quick` smoke runs on small
//! graphs. Results land in `BENCH_JSON` (the CI `gather-smoke` step
//! publishes them as `BENCH_gather.json`).

use std::process::exit;
use std::time::Instant;

use snaple_bench::{append_bench_json, banner, emit, ExpArgs};
use snaple_core::similarity::{
    intersection_size_scalar, CommonNeighbors, Jaccard, NeighborhoodView, Similarity,
};
use snaple_eval::TextTable;
use snaple_graph::gen::datasets;
use snaple_graph::{CsrGraph, Relabeling};

/// Mirrors [`Jaccard::score`]'s arithmetic exactly (same f32 expression,
/// only the intersection routine differs) so the checksums can be
/// compared bitwise.
fn jaccard_from(inter: usize, du: usize, dv: usize) -> f32 {
    let union = du + dv - inter;
    if union == 0 {
        0.0
    } else {
        inter as f32 / union as f32
    }
}

/// Mirrors [`CommonNeighbors::score`].
fn common_from(inter: usize, _du: usize, _dv: usize) -> f32 {
    inter as f32
}

/// Scalar baseline: per-pair linear-merge intersections, no batching.
/// Returns (checksum, pairs, seconds).
fn scalar_sweep(graph: &CsrGraph, formula: fn(usize, usize, usize) -> f32) -> (u64, u64, f64) {
    let started = Instant::now();
    let mut checksum = 0u64;
    let mut pairs = 0u64;
    for u in graph.vertices() {
        let gu = graph.out_neighbors(u);
        for &v in gu {
            let gv = graph.out_neighbors(v);
            let inter = intersection_size_scalar(gu, gv);
            checksum = checksum.wrapping_add(formula(inter, gu.len(), gv.len()).to_bits() as u64);
            pairs += 1;
        }
    }
    (checksum, pairs, started.elapsed().as_secs_f64())
}

/// Striped path: whole neighbor runs through [`Similarity::score_stripe`]
/// (which dispatches through the galloping/block intersection).
fn stripe_sweep(graph: &CsrGraph, kernel: &dyn Similarity) -> (u64, u64, f64) {
    let started = Instant::now();
    let mut checksum = 0u64;
    let mut pairs = 0u64;
    let mut views: Vec<NeighborhoodView<'_>> = Vec::new();
    let mut out: Vec<f32> = Vec::new();
    for u in graph.vertices() {
        let gu = graph.out_neighbors(u);
        if gu.is_empty() {
            continue;
        }
        views.clear();
        views.extend(
            gu.iter()
                .map(|&v| NeighborhoodView::new(graph.out_neighbors(v), graph.out_degree(v))),
        );
        out.clear();
        out.resize(views.len(), 0.0);
        kernel.score_stripe(NeighborhoodView::new(gu, gu.len()), &views, &mut out);
        for &s in &out {
            checksum = checksum.wrapping_add(s.to_bits() as u64);
        }
        pairs += views.len() as u64;
    }
    (checksum, pairs, started.elapsed().as_secs_f64())
}

fn main() {
    let args = ExpArgs::parse(
        "exp-gather",
        "scalar vs vectorized/striped set-intersection gather micro",
    );
    banner(
        "exp-gather",
        "the gather hot path behind Table 5's compute column",
        &args,
    );

    let scale = if args.quick { 0.001 } else { 0.004 } * args.scale;
    let graph = datasets::ORKUT.emulate(scale, args.seed);
    let relabeling = Relabeling::degree_order(&graph);
    let relabeled = relabeling.apply(&graph);
    println!(
        "orkut@{scale:.4}: {} vertices, {} edges (simd feature: {})\n",
        graph.num_vertices(),
        graph.num_edges(),
        cfg!(feature = "simd"),
    );

    type ScalarFormula = fn(usize, usize, usize) -> f32;
    let kernels: &[(&str, &dyn Similarity, ScalarFormula)] = &[
        ("jaccard", &Jaccard, jaccard_from),
        ("common-neighbors", &CommonNeighbors, common_from),
    ];
    // The floor is only meaningful for the vectorized build: without the
    // `simd` feature the dispatch falls back to the same merge the scalar
    // baseline runs (galloping rarely triggers on Orkut's even degrees),
    // so enforcing would only measure stripe bookkeeping overhead. The CI
    // gather-smoke step builds with `--features simd`.
    let floor = if !cfg!(feature = "simd") {
        0.0
    } else if args.quick {
        1.3
    } else {
        2.0
    };
    let reps = if args.quick { 2 } else { 3 };

    let mut table = TextTable::new(vec![
        "kernel", "pairs", "scalar", "striped", "speedup", "checksum",
    ]);
    let mut failed = false;
    for &(name, kernel, formula) in kernels {
        let mut scalar_seconds = f64::MAX;
        let mut stripe_seconds = f64::MAX;
        let (mut scalar_sum, mut scalar_pairs) = (0u64, 0u64);
        let (mut stripe_sum, mut stripe_pairs) = (0u64, 0u64);
        for _ in 0..reps {
            let (sum, pairs, secs) = scalar_sweep(&graph, formula);
            (scalar_sum, scalar_pairs) = (sum, pairs);
            scalar_seconds = scalar_seconds.min(secs);
            let (sum, pairs, secs) = stripe_sweep(&relabeled, kernel);
            (stripe_sum, stripe_pairs) = (sum, pairs);
            stripe_seconds = stripe_seconds.min(secs);
        }
        if (scalar_sum, scalar_pairs) != (stripe_sum, stripe_pairs) {
            eprintln!(
                "DIVERGENCE: {name} scalar checksum {scalar_sum:#x} over {scalar_pairs} pairs, \
                 striped {stripe_sum:#x} over {stripe_pairs} pairs"
            );
            failed = true;
        }
        let speedup = scalar_seconds / stripe_seconds.max(1e-12);
        if speedup < floor {
            eprintln!("BELOW FLOOR: {name} striped speedup {speedup:.2}x < required {floor:.1}x");
            failed = true;
        }
        table.row(vec![
            name.to_string(),
            scalar_pairs.to_string(),
            format!("{:.1}ms", scalar_seconds * 1e3),
            format!("{:.1}ms", stripe_seconds * 1e3),
            format!("{speedup:.2}x"),
            format!("{scalar_sum:#018x}"),
        ]);
        append_bench_json(&format!(
            "{{\"name\":\"gather/{name}\",\
             \"pairs\":{scalar_pairs},\
             \"scalar_seconds\":{scalar_seconds:.6},\
             \"striped_seconds\":{stripe_seconds:.6},\
             \"speedup\":{speedup:.3},\
             \"floor\":{floor},\
             \"simd_feature\":{}}}",
            cfg!(feature = "simd"),
        ));
    }

    emit(&args, "gather", &table);
    if failed {
        eprintln!("FAILED: checksum divergence or speedup below the enforced floor");
        exit(1);
    }
    println!("equivalence: all kernel checksums bitwise identical across paths");
}
