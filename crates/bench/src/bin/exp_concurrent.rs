//! The reproduction's concurrent-serving experiment (no paper
//! counterpart): throughput of the [`ConcurrentServer`] worker pool
//! versus the sequential [`Server`] on the same request stream, plus
//! read latency while an update stream applies.
//!
//! Three measurements on an emulated GOWALLA subset:
//!
//! 1. **Sequential baseline** — the one-at-a-time `Server::serve` loop.
//! 2. **Throughput vs workers** — the same stream through worker pools
//!    of 1/2/4/`--workers` threads (workers coalesce up to 8 queued
//!    requests per run), with every response verified bit-identical to
//!    the sequential baseline.
//! 3. **Reads during updates** — a 4-worker pool serving the stream
//!    while a churn delta epoch-swaps mid-stream; reports the
//!    p50/p95/p99 submission-to-response latency and verifies post-swap
//!    responses equal a cold rebuild.
//!
//! Exit-code enforced: the pooled throughput at `--workers` must be at
//! least the sequential server's, and (full runs) >= 2x at 4 workers.

use std::process::exit;
use std::time::Instant;

use snaple_bench::{append_bench_json, churn_delta};
use snaple_core::concurrent::{ConcurrentOptions, ConcurrentServer, PendingPrediction};
use snaple_core::serve::Server;
use snaple_core::{NamedScore, Prediction, QuerySet, Snaple, SnapleConfig};
use snaple_eval::TextTable;
use snaple_gas::ClusterSpec;
use snaple_graph::gen::datasets;

struct Args {
    scale: f64,
    seed: u64,
    quick: bool,
    workers: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        seed: 42,
        quick: false,
        workers: 8,
    };
    let mut it = std::env::args().skip(1);
    let usage = |error: &str| -> ! {
        if !error.is_empty() {
            eprintln!("error: {error}\n");
        }
        eprintln!("exp-concurrent — worker-pool serving throughput vs the sequential server");
        eprintln!();
        eprintln!("usage: exp-concurrent [--scale F] [--seed N] [--workers N] [--quick]");
        eprintln!("  --scale F    multiply the dataset scale by F (default 1.0)");
        eprintln!("  --seed N     base random seed (default 42)");
        eprintln!("  --workers N  largest pool size to measure (default 8)");
        eprintln!("  --quick      reduced stream for smoke runs");
        exit(if error.is_empty() { 0 } else { 2 })
    };
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--scale" => {
                args.scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage("invalid --scale"))
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("invalid --seed"))
            }
            "--workers" => {
                args.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("invalid --workers"))
            }
            "--quick" => args.quick = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if args.workers == 0 || args.scale <= 0.0 {
        usage("--workers and --scale must be positive");
    }
    args
}

fn verify_rows(requests: &[QuerySet], got: &[Prediction], want: &[Prediction], label: &str) {
    for (request, (g, w)) in requests.iter().zip(got.iter().zip(want)) {
        for q in request.iter() {
            if g.for_vertex(q) != w.for_vertex(q) {
                eprintln!("FAIL: {label}: row {q} diverged from the sequential server");
                exit(1);
            }
        }
    }
}

fn main() {
    let args = parse_args();
    println!("=== exp-concurrent — concurrent serving runtime (ROADMAP north star) ===");
    println!(
        "scale multiplier {:.3}, seed {}, quick={}, max workers {}",
        args.scale, args.seed, args.quick, args.workers
    );
    println!();

    let base_scale = if args.quick { 0.004 } else { 0.01 };
    let graph = datasets::GOWALLA.emulate(base_scale * args.scale, args.seed);
    let cluster = ClusterSpec::type_ii(4);
    let num_requests = if args.quick { 30 } else { 100 };
    let per_request = (graph.num_vertices() / 100).max(1);
    let requests: Vec<QuerySet> = (0..num_requests)
        .map(|i| QuerySet::sample(graph.num_vertices(), per_request, args.seed + i as u64))
        .collect();
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .klocal(Some(20))
            .seed(args.seed),
    );
    println!(
        "gowalla emulation: {} vertices, {} edges; {} requests of {} queries",
        graph.num_vertices(),
        graph.num_edges(),
        num_requests,
        per_request
    );

    // --- 1. Sequential baseline: one request at a time. ------------------
    let mut sequential = Server::new(&snaple, &graph, &cluster).expect("prepare");
    let started = Instant::now();
    let expected: Vec<Prediction> = requests
        .iter()
        .map(|q| sequential.serve(q).expect("serve"))
        .collect();
    let sequential_wall = started.elapsed().as_secs_f64();
    let sequential_rps = num_requests as f64 / sequential_wall;
    sequential
        .stats()
        .write_bench_json("exp-concurrent-sequential");

    let mut table = TextTable::new(vec![
        "configuration",
        "req/s",
        "speedup",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
    ]);
    table.row(vec![
        "sequential Server".into(),
        format!("{sequential_rps:.1}"),
        "1.00x".into(),
        format!("{:.2}", sequential.stats().latency.p50() * 1e3),
        format!("{:.2}", sequential.stats().latency.p95() * 1e3),
        format!("{:.2}", sequential.stats().latency.p99() * 1e3),
    ]);

    // --- 2. Throughput vs workers. ---------------------------------------
    let mut pool_sizes = vec![1, 2, 4];
    if !pool_sizes.contains(&args.workers) {
        pool_sizes.push(args.workers);
    }
    let mut speedup_at = |workers: usize| -> f64 {
        let outcome = ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(workers).batch(8),
            |handle| {
                let pending: Vec<PendingPrediction> = requests
                    .iter()
                    .map(|q| handle.submit(q).expect("submit"))
                    .collect();
                pending
                    .into_iter()
                    .map(|p| p.wait().expect("response"))
                    .collect::<Vec<Prediction>>()
            },
        )
        .expect("concurrent run");
        verify_rows(
            &requests,
            &outcome.value,
            &expected,
            &format!("{workers} workers"),
        );
        let stats = &outcome.stats;
        let speedup = stats.throughput_rps() / sequential_rps;
        table.row(vec![
            format!("ConcurrentServer x{workers} (batch 8)"),
            format!("{:.1}", stats.throughput_rps()),
            format!("{speedup:.2}x"),
            format!("{:.2}", stats.latency.p50() * 1e3),
            format!("{:.2}", stats.latency.p95() * 1e3),
            format!("{:.2}", stats.latency.p99() * 1e3),
        ]);
        stats.write_bench_json(&format!("exp-concurrent-w{workers}"));
        speedup
    };
    let mut speedup_4 = 0.0;
    let mut speedup_max = 0.0;
    for &workers in &pool_sizes {
        let speedup = speedup_at(workers);
        if workers == 4 {
            speedup_4 = speedup;
        }
        if workers == args.workers {
            speedup_max = speedup;
        }
    }
    println!("{}", table.render());

    // --- 3. Reads during an epoch-swapped update. ------------------------
    let delta = churn_delta(&graph, 0.01, args.seed ^ 0xc0c);
    let mutated = graph.compact(&delta);
    let mut cold = Server::new(&snaple, &mutated, &cluster).expect("cold prepare");
    let post_request = QuerySet::sample(graph.num_vertices(), per_request, args.seed ^ 0x9e);
    let outcome = ConcurrentServer::run(
        &snaple,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(4).batch(8),
        |handle| {
            let half = requests.len() / 2;
            let mut pending: Vec<PendingPrediction> = requests[..half]
                .iter()
                .map(|q| handle.submit(q).expect("submit"))
                .collect();
            // The epoch swap lands while the first half is in flight;
            // reads keep completing on whichever epoch they pinned.
            handle.apply_update(&delta).expect("update");
            pending.extend(
                requests[half..]
                    .iter()
                    .map(|q| handle.submit(q).expect("submit")),
            );
            for p in pending {
                p.wait().expect("response");
            }
            // Every read after the swap serves the mutated graph.
            handle.serve(&post_request).expect("post-swap read")
        },
    )
    .expect("update run");
    let expected_post = cold.serve(&post_request).expect("cold serve");
    for q in post_request.iter() {
        if outcome.value.for_vertex(q) != expected_post.for_vertex(q) {
            eprintln!("FAIL: post-swap row {q} diverged from a cold rebuild");
            exit(1);
        }
    }
    let stats = &outcome.stats;
    println!(
        "reads during update: {} requests around 1 epoch swap (+{} -{} edges): \
         {:.1} req/s, p50/p95/p99 {:.2}/{:.2}/{:.2} ms, delta fork+apply {:.1} ms",
        stats.requests,
        stats.edges_inserted,
        stats.edges_removed,
        stats.throughput_rps(),
        stats.latency.p50() * 1e3,
        stats.latency.p95() * 1e3,
        stats.latency.p99() * 1e3,
        stats.delta_apply_seconds * 1e3,
    );
    stats.write_bench_json("exp-concurrent-reads-during-update");
    append_bench_json(&format!(
        "{{\"name\":\"exp-concurrent-summary\",\"sequential_rps\":{sequential_rps:.2},\
         \"speedup_w4\":{speedup_4:.3},\"speedup_max\":{speedup_max:.3},\
         \"max_workers\":{}}}",
        args.workers
    ));

    // --- Enforcement. ----------------------------------------------------
    println!();
    if speedup_max < 1.0 {
        eprintln!(
            "FAIL: {} workers reach only {speedup_max:.2}x of the sequential \
             server's throughput (must be >= 1x)",
            args.workers
        );
        exit(1);
    }
    if !args.quick && speedup_4 < 2.0 {
        eprintln!(
            "FAIL: 4 workers reach only {speedup_4:.2}x of the sequential \
             server's throughput (acceptance bar: >= 2x on the full stream)"
        );
        exit(1);
    }
    println!(
        "PASS: bit-identical to the sequential server; {speedup_4:.2}x at 4 workers, \
         {speedup_max:.2}x at {} workers{}",
        args.workers,
        if args.quick {
            " (quick mode: >=1x enforced)"
        } else {
            " (>=2x at 4 workers enforced)"
        }
    );
}
