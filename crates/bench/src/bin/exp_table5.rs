//! Reproduces **Table 5** — SNAPLE vs a direct GAS implementation
//! (BASELINE) on gowalla, pokec and livejournal: recall and execution time
//! for three scoring configurations under the four `{thrΓ, klocal} ∈
//! {∞, 20}²` corners, on 4 type-II nodes (80 cores).
//!
//! Also reproduces the observation that made the paper's headline:
//! BASELINE *fails by resource exhaustion* on orkut and twitter-rv.

use snaple_baseline::{Baseline, BaselineConfig};
use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_core::{NamedScore, Snaple, SnapleConfig};
use snaple_eval::table::{fmt_gain, fmt_recall, fmt_seconds};
use snaple_eval::{Outcome, Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-table5",
        "Table 5: SNAPLE vs a direct GAS implementation (BASELINE)",
    );
    banner("exp-table5", "paper Table 5 (§5.3)", &args);

    // BASELINE's neighbor-of-neighbor tables are combinatorially large, so
    // this experiment runs at a fraction of the suggested scales (the
    // paper's point is precisely that the direct implementation does not
    // scale).
    let table5_scale = if args.quick { 0.15 } else { 0.4 };
    let scores = [NamedScore::LinearSum, NamedScore::Counter, NamedScore::Ppr];
    let corners: [(Option<usize>, Option<usize>); 4] = [
        (None, None),
        (Some(20), None),
        (None, Some(20)),
        (Some(20), Some(20)),
    ];

    let mut table = TextTable::new(vec![
        "dataset",
        "config",
        "thrΓ",
        "klocal",
        "recall",
        "(gain)",
        "time (s)",
        "(speedup)",
    ]);

    for name in ["gowalla", "pokec", "livejournal"] {
        let ds = dataset(&args, name).scaled_by(table5_scale);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);
        let cluster = scaled_cluster(ClusterSpec::type_ii(4), &ds);

        let base = runner.run(
            "BASELINE",
            &Baseline::new(BaselineConfig::new().seed(args.seed)),
            &runner.request(&cluster),
        );
        table.row(vec![
            name.into(),
            "BASELINE".into(),
            "-".into(),
            "-".into(),
            fmt_recall(base.recall),
            String::new(),
            fmt_seconds(base.simulated_seconds),
            String::new(),
        ]);

        for (thr, klocal) in corners {
            for score in scores {
                let config = SnapleConfig::new(score)
                    .thr_gamma(thr)
                    .klocal(klocal)
                    .seed(args.seed);
                let m = runner.run(
                    score.name(),
                    &Snaple::new(config),
                    &runner.request(&cluster),
                );
                let fmt_inf =
                    |v: Option<usize>| v.map_or_else(|| "∞".to_owned(), |x| x.to_string());
                table.row(vec![
                    name.into(),
                    score.name().into(),
                    fmt_inf(thr),
                    fmt_inf(klocal),
                    fmt_recall(m.recall),
                    fmt_gain(m.recall / base.recall.max(1e-9)),
                    fmt_seconds(m.simulated_seconds),
                    fmt_gain(base.simulated_seconds / m.simulated_seconds.max(1e-9)),
                ]);
            }
        }
    }
    emit(&args, "table5", &table);

    // The headline: BASELINE exhausts memory on the large datasets.
    println!(
        "BASELINE on the large datasets (paper: \"fail by exhausting the available memory\"):"
    );
    let mut oom = TextTable::new(vec!["dataset", "outcome"]);
    for name in ["orkut", "twitter-rv"] {
        let ds = dataset(&args, name).scaled_by(table5_scale);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);
        let cluster = scaled_cluster(ClusterSpec::type_ii(4), &ds);
        let m = runner.run(
            "BASELINE",
            &Baseline::new(BaselineConfig::new().seed(args.seed)),
            &runner.request(&cluster),
        );
        let outcome = match &m.outcome {
            Outcome::OutOfMemory { detail } => format!("OUT OF MEMORY — {detail}"),
            Outcome::Completed => format!(
                "completed (recall {}, {} s) — unexpected at paper scale",
                fmt_recall(m.recall),
                fmt_seconds(m.simulated_seconds)
            ),
            Outcome::Failed { detail } => format!("failed — {detail}"),
        };
        oom.row(vec![name.into(), outcome]);
    }
    emit(&args, "table5-oom", &oom);
}
