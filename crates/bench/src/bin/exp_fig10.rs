//! Reproduces **Figure 10** — sensitivity of recall to the number of edges
//! removed per vertex (1–5, `klocal = 80`) on livejournal and pokec, for
//! the five Sum-family scores.
//!
//! Removing more edges deletes the very paths SNAPLE needs to find the
//! missing links, so recall decreases roughly proportionally.

use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_core::{NamedScore, Snaple, SnapleConfig};
use snaple_eval::{Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-fig10",
        "Figure 10: recall as more edges are removed per vertex",
    );
    banner("exp-fig10", "paper Figure 10 (§5.8)", &args);

    let klocal = if args.quick { 20 } else { 80 };
    let removals: &[usize] = if args.quick {
        &[1, 3, 5]
    } else {
        &[1, 2, 3, 4, 5]
    };
    let scores: Vec<NamedScore> = if args.quick {
        vec![NamedScore::LinearSum, NamedScore::Counter]
    } else {
        NamedScore::sum_family().to_vec()
    };

    let mut table = TextTable::new(vec!["dataset", "score", "removed/vertex", "recall"]);
    for name in ["livejournal", "pokec"] {
        let ds = dataset(&args, name);
        for &removed in removals {
            let (_graph, holdout) = ds.load_with_holdout(args.seed, removed);
            let runner = Runner::new(&holdout);
            let cluster = scaled_cluster(ClusterSpec::type_i(32), &ds);
            for &score in &scores {
                let config = SnapleConfig::new(score)
                    .klocal(Some(klocal))
                    .seed(args.seed);
                let m = runner.run(
                    score.name(),
                    &Snaple::new(config),
                    &runner.request(&cluster),
                );
                table.row(vec![
                    (*name).to_owned(),
                    score.name().to_owned(),
                    removed.to_string(),
                    format!("{:.3}", m.recall),
                ]);
            }
        }
    }
    emit(&args, "fig10", &table);
    println!("expected shape: recall decreases as more edges are removed (paper §5.8).");
}
