//! Reproduces **Figure 11** — the single-machine comparator: recall and
//! computing time of random-walk personalized PageRank (the Cassovary
//! stand-in) on livejournal and twitter-rv, sweeping walk count
//! `w ∈ {10, 100, 1000}` and depth `d ∈ {3, 4, 5, 10}` on one type-II node.
//!
//! The paper's observations: deeper walks barely help (`d = 3` is close to
//! optimal), more walks help but cost linearly more time.

use snaple_bench::{banner, dataset, emit, ExpArgs};
use snaple_cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple_eval::table::fmt_seconds;
use snaple_eval::{Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-fig11",
        "Figure 11: recall vs time for single-machine random-walk PPR",
    );
    banner("exp-fig11", "paper Figure 11 (§5.9)", &args);

    let walks: &[usize] = if args.quick {
        &[10, 100]
    } else {
        &[10, 100, 1000]
    };
    let depths: &[usize] = if args.quick { &[3, 10] } else { &[3, 4, 5, 10] };
    let machine = ClusterSpec::single_machine(20, 128 << 30);

    let mut table = TextTable::new(vec!["dataset", "w", "d", "sim time (s)", "recall"]);
    for name in ["livejournal", "twitter-rv"] {
        let ds = dataset(&args, name);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);
        for &w in walks {
            for &d in depths {
                let config = RandomWalkConfig::new().walks(w).depth(d).seed(args.seed);
                let m = runner.run(
                    &format!("PPR w={w} d={d}"),
                    &RandomWalkPpr::new(config),
                    &runner.request(&machine),
                );
                table.row(vec![
                    (*name).to_owned(),
                    w.to_string(),
                    d.to_string(),
                    fmt_seconds(m.simulated_seconds),
                    format!("{:.3}", m.recall),
                ]);
            }
        }
    }
    emit(&args, "fig11", &table);
    println!(
        "expected shape: d beyond 3 yields little extra recall; larger w\n\
         improves recall at proportionally higher time (paper §5.9)."
    );
}
