//! `exp-dataplane` — zero-parse on-disk CSR vs legacy decode-on-load.
//!
//! The billion-edge data plane stands on one property: opening a raw
//! `SNPLG2` file costs **header + TOC only** (the on-disk sections *are*
//! the CSR arrays), while the legacy `SNPLG1` format re-decodes every
//! edge on load. This experiment generates an RMAT ladder through the
//! out-of-core builder (graph size bounded by disk, not RAM), then
//! measures per size:
//!
//! 1. **v2 open** — [`FileCsr::open`](snaple_graph::FileCsr::open):
//!    must stay *flat* as the graph grows 16x;
//! 2. **v1 parse** — `io::read_binary` on the same graph re-encoded as
//!    `SNPLG1`: grows linearly with the edge count;
//! 3. **backend bit-identity** — SNAPLE prediction rows over the
//!    in-RAM `csr`, zero-parse `file-csr`, and delta-varint `varint`
//!    backends must match byte for byte.
//!
//! All three properties are **exit-code enforced** — the CI
//! `dataplane-smoke` step runs `--quick`; the full grid ends with a
//! 100M-edge streamed-generator run (the builder and generator never
//! hold the graph in memory, so the run is disk-bound, not RAM-bound).

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use snaple_bench::{append_bench_json, banner, emit, ExpArgs};
use snaple_core::{NamedScore, PredictRequest, Predictor, Snaple, SnapleConfig};
use snaple_eval::table::fmt_millis;
use snaple_eval::TextTable;
use snaple_gas::ClusterSpec;
use snaple_graph::gen::rmat::RmatConfig;
use snaple_graph::{compress, io, CompressedGraph, ExternalGraphBuilder, FileCsr, GraphStore};

/// One rung of the size ladder.
struct Rung {
    /// Edges to draw from the RMAT generator (pre-dedup).
    edges: u64,
    /// Whether the legacy `SNPLG1` decode-on-load path is measured at
    /// this size (skipped for rungs that would not fit CI RAM budgets —
    /// v1 *requires* materializing in memory, which is the point).
    measure_v1: bool,
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let value = f();
        best = best.min(started.elapsed().as_secs_f64());
        out = Some(value);
    }
    (out.expect("reps >= 1"), best)
}

fn main() {
    let args = ExpArgs::parse(
        "exp-dataplane",
        "zero-parse SNPLG2 open vs linear SNPLG1 parse; backend bit-identity",
    );
    banner(
        "exp-dataplane",
        "the billion-edge data plane (storage backends, out-of-core build)",
        &args,
    );

    // Quick: 100k -> 1.6M drawn edges (16x). Full: 1M -> 100M; the
    // 100M rung exercises the streamed generator + external builder at
    // scale and measures v2 open only (a v1 re-encode at 100M would
    // deliberately blow the point of the experiment: it has to fit in
    // RAM).
    let ladder: Vec<Rung> = if args.quick {
        vec![
            Rung {
                edges: 100_000,
                measure_v1: true,
            },
            Rung {
                edges: 400_000,
                measure_v1: true,
            },
            Rung {
                edges: 1_600_000,
                measure_v1: true,
            },
        ]
    } else {
        vec![
            Rung {
                edges: 1_000_000,
                measure_v1: true,
            },
            Rung {
                edges: 10_000_000,
                measure_v1: true,
            },
            Rung {
                edges: 100_000_000,
                measure_v1: false,
            },
        ]
    };
    let reps = if args.quick { 3 } else { 5 };

    let dir: PathBuf =
        std::env::temp_dir().join(format!("snaple-dataplane-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("FAILED: cannot create scratch dir {}: {e}", dir.display());
        exit(1);
    }

    let mut table = TextTable::new(vec![
        "drawn edges",
        "unique edges",
        "gen+build",
        "v2 bytes",
        "v2 open",
        "v1 parse",
        "parse/open",
    ]);
    let mut v2_opens: Vec<(u64, f64)> = Vec::new();
    let mut v1_parses: Vec<(u64, f64)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for rung in &ladder {
        // 16 drawn edges per vertex, the RMAT convention.
        let scale = (64 - (rung.edges / 16).leading_zeros() - 1).max(4);
        let config = RmatConfig {
            scale,
            edges: rung.edges,
            seed: args.seed,
            ..RmatConfig::default()
        };
        let v2_path = dir.join(format!("rmat-{}.snplg", rung.edges));

        // --- Streamed generate + out-of-core build straight to disk. --
        let started = Instant::now();
        let mut builder = ExternalGraphBuilder::new();
        builder.scratch_dir(&dir);
        let stats = match config.generate_with(builder, &v2_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAILED: generate {} edges: {e}", rung.edges);
                exit(1);
            }
        };
        let build_seconds = started.elapsed().as_secs_f64();

        // --- v2 open: header + TOC only, flat in graph size. ----------
        let (_, open_seconds) = best_of(reps, || {
            FileCsr::open(&v2_path).expect("open just-built SNPLG2")
        });
        v2_opens.push((rung.edges, open_seconds));

        // --- v1 parse: decode every edge on load. ---------------------
        let v1_seconds = if rung.measure_v1 {
            let v1_path = dir.join(format!("rmat-{}.v1.snplg", rung.edges));
            let file_csr = FileCsr::open(&v2_path).expect("open for v1 re-encode");
            let csr = file_csr.to_csr();
            let out = std::fs::File::create(&v1_path).expect("create v1 file");
            io::write_binary_v1(&csr, std::io::BufWriter::new(out)).expect("write v1");
            drop(csr);
            let (_, secs) = best_of(reps, || {
                let f = std::fs::File::open(&v1_path).expect("open v1 file");
                io::read_binary(std::io::BufReader::new(f)).expect("parse v1")
            });
            v1_parses.push((rung.edges, secs));
            std::fs::remove_file(&v1_path).ok();
            Some(secs)
        } else {
            None
        };

        table.row(vec![
            rung.edges.to_string(),
            stats.edges.to_string(),
            fmt_millis(build_seconds),
            stats.output_bytes.to_string(),
            fmt_millis(open_seconds),
            v1_seconds.map_or("(skipped)".into(), fmt_millis),
            v1_seconds.map_or("-".into(), |v1| {
                format!("{:.0}x", v1 / open_seconds.max(1e-9))
            }),
        ]);
        append_bench_json(&format!(
            "{{\"name\":\"dataplane/ladder/{}\",\"drawn_edges\":{},\
             \"unique_edges\":{},\"build_seconds\":{build_seconds:.6},\
             \"v2_bytes\":{},\"v2_open_seconds\":{open_seconds:.9},\
             \"v1_parse_seconds\":{}}}",
            rung.edges,
            rung.edges,
            stats.edges,
            stats.output_bytes,
            v1_seconds.map_or("null".into(), |v| format!("{v:.6}")),
        ));
        std::fs::remove_file(&v2_path).ok();
    }

    // --- Enforcement 1: v2 open is flat across the ladder. ------------
    // Open reads a fixed-size header + TOC whatever the graph size; a
    // generous noise budget (25x or an absolute 50ms floor) still
    // rejects anything O(edges) over a 16-100x edge range.
    let (small_e, small_open) = v2_opens[0];
    let (big_e, big_open) = v2_opens[v2_opens.len() - 1];
    let open_budget = (small_open * 25.0).max(0.050);
    if big_open > open_budget {
        failures.push(format!(
            "v2 open grew with graph size: {} at {small_e} edges but {} at {big_e} edges \
             (budget {})",
            fmt_millis(small_open),
            fmt_millis(big_open),
            fmt_millis(open_budget),
        ));
    }

    // --- Enforcement 2: v1 parse grows ~linearly with edges. ----------
    // Over a >= 10x edge-count range, a full per-edge decode must slow
    // down by well over the 3x we require (generous against CI noise).
    let (v1_small_e, v1_small) = v1_parses[0];
    let (v1_big_e, v1_big) = v1_parses[v1_parses.len() - 1];
    if v1_big < v1_small * 3.0 {
        failures.push(format!(
            "v1 parse did not grow with graph size: {} at {v1_small_e} edges vs {} at \
             {v1_big_e} edges — expected >= 3x",
            fmt_millis(v1_small),
            fmt_millis(v1_big),
        ));
    }
    // And at the largest v1-measured size, zero-parse open must beat the
    // full decode outright.
    let matching_open = v2_opens
        .iter()
        .find(|(e, _)| *e == v1_big_e)
        .map(|&(_, s)| s)
        .expect("v1 rungs are a subset of the ladder");
    if v1_big < matching_open * 5.0 {
        failures.push(format!(
            "v2 open ({}) is not >= 5x faster than v1 parse ({}) at {v1_big_e} edges",
            fmt_millis(matching_open),
            fmt_millis(v1_big),
        ));
    }

    // --- Enforcement 3: prediction rows bit-identical per backend. ----
    let rows_identical = check_backend_identity(&dir, &args, &mut failures);

    emit(&args, "dataplane", &table);
    append_bench_json(&format!(
        "{{\"name\":\"dataplane/summary\",\"v2_open_small_seconds\":{small_open:.9},\
         \"v2_open_big_seconds\":{big_open:.9},\"v1_parse_big_seconds\":{v1_big:.6},\
         \"backends_identical\":{rows_identical},\"failures\":{}}}",
        failures.len(),
    ));
    std::fs::remove_dir_all(&dir).ok();

    if failures.is_empty() {
        println!(
            "\ndataplane holds: v2 open flat ({} -> {} over {}x edges), v1 parse {:.0}x \
             slower than open at {v1_big_e} edges, rows bit-identical on all backends",
            fmt_millis(small_open),
            fmt_millis(big_open),
            big_e / small_e,
            v1_big / matching_open.max(1e-9),
        );
    } else {
        for f in &failures {
            eprintln!("FAILED: {f}");
        }
        exit(1);
    }
}

/// Runs the same SNAPLE prediction over the `csr`, `file-csr`, and
/// `varint` backends of one graph and pushes a failure when any row
/// diverges.
fn check_backend_identity(
    dir: &std::path::Path,
    args: &ExpArgs,
    failures: &mut Vec<String>,
) -> bool {
    let config = RmatConfig {
        scale: 12,
        edges: 60_000,
        seed: args.seed ^ 0x9e37,
        ..RmatConfig::default()
    };
    let v2_path = dir.join("identity.snplg");
    let vz_path = dir.join("identity.vz.snplg");
    config
        .generate_to_file(&v2_path)
        .expect("generate identity graph");
    let file_csr = FileCsr::open(&v2_path).expect("open identity graph");
    {
        let out = std::fs::File::create(&vz_path).expect("create varint file");
        compress::write_v2_varint(&file_csr, std::io::BufWriter::new(out)).expect("write varint");
    }
    let backends: Vec<Box<dyn GraphStore>> = vec![
        Box::new(file_csr.to_csr()),
        Box::new(file_csr),
        Box::new(CompressedGraph::open(&vz_path).expect("open varint")),
    ];

    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(20))
            .seed(args.seed),
    );
    let mut reference: Option<(String, Vec<String>)> = None;
    let mut identical = true;
    for graph in &backends {
        let name = graph.backend_name().to_string();
        let prediction = snaple
            .predict(&PredictRequest::new(graph.as_ref(), &cluster))
            .expect("predict");
        let rows: Vec<String> = snaple_graph::store::vertices(graph.as_ref())
            .flat_map(|v| {
                prediction
                    .for_vertex(v)
                    .iter()
                    .map(move |(t, s)| format!("{v} {t} {s}"))
                    .collect::<Vec<_>>()
            })
            .collect();
        match &reference {
            None => reference = Some((name, rows)),
            Some((ref_name, ref_rows)) => {
                if rows != *ref_rows {
                    identical = false;
                    failures.push(format!(
                        "prediction rows diverge between the {ref_name} and {name} backends"
                    ));
                }
            }
        }
    }
    println!(
        "\nbackend bit-identity: {} rows {} across csr / file-csr / varint",
        reference.map_or(0, |(_, rows)| rows.len()),
        if identical { "identical" } else { "DIVERGED" },
    );
    identical
}
