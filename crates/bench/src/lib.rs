#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Shared plumbing for the experiment binaries (`exp-table4` …
//! `exp-table6`) that regenerate the paper's tables and figures.
//!
//! Every binary follows the same shape:
//!
//! 1. parse the common CLI flags ([`ExpArgs`]): `--scale` (multiplies each
//!    dataset's default scale), `--seed`, `--out <dir>` (writes TSV next to
//!    the console rendering), `--quick` (smaller parameter grids for smoke
//!    runs);
//! 2. generate datasets and hold-outs through [`snaple_eval::EvalDataset`];
//! 3. run predictors through [`snaple_eval::Runner`];
//! 4. print a [`snaple_eval::TextTable`] mirroring the paper's rows and
//!    optionally persist it.
//!
//! See DESIGN.md §4 for the experiment-to-binary index.

use std::fs;
use std::path::PathBuf;
use std::process::exit;

use snaple_eval::{EvalDataset, TextTable};
use snaple_gas::ClusterSpec;
use snaple_graph::hash::hash2;
use snaple_graph::{CsrGraph, GraphDelta, VertexId};

/// Common command-line arguments of every experiment binary.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Multiplier applied to each dataset's default scale.
    pub scale: f64,
    /// Base random seed.
    pub seed: u64,
    /// Directory for TSV output (created on demand).
    pub out: Option<PathBuf>,
    /// Run a reduced grid for quick smoke tests.
    pub quick: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 1.0,
            seed: 42,
            out: None,
            quick: false,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with usage help on errors or
    /// `--help`.
    pub fn parse(experiment: &str, description: &str) -> ExpArgs {
        let mut args = ExpArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => args.scale = expect_value(&mut it, "--scale"),
                "--seed" => args.seed = expect_value(&mut it, "--seed"),
                "--out" => {
                    args.out = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                        usage_and_exit(experiment, description, "--out needs a directory")
                    })))
                }
                "--quick" => args.quick = true,
                "--help" | "-h" => usage_and_exit(experiment, description, ""),
                other => {
                    usage_and_exit(experiment, description, &format!("unknown flag {other:?}"))
                }
            }
        }
        if args.scale <= 0.0 {
            usage_and_exit(experiment, description, "--scale must be positive");
        }
        args
    }

    /// Writes a table as TSV into the `--out` directory (if given).
    pub fn persist(&self, name: &str, table: &TextTable) {
        let Some(dir) = &self.out else { return };
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.tsv"));
        if let Err(e) = fs::write(&path, table.to_tsv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }
}

fn expect_value<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        exit(2)
    })
}

fn usage_and_exit(experiment: &str, description: &str, error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!("{experiment} — {description}");
    eprintln!();
    eprintln!("usage: {experiment} [--scale F] [--seed N] [--out DIR] [--quick]");
    eprintln!("  --scale F   multiply every dataset's default scale by F (default 1.0)");
    eprintln!("  --seed N    base random seed (default 42)");
    eprintln!("  --out DIR   also write results as TSV into DIR");
    eprintln!("  --quick     reduced parameter grid for smoke runs");
    exit(if error.is_empty() { 0 } else { 2 })
}

/// Appends one pre-rendered JSON line to the file named by the
/// `BENCH_JSON` environment variable, if set — the convention the
/// criterion stand-in and `snaple_core::ServerStats` also follow, shared
/// here so bench binaries emit custom lines (totals, speedups) without
/// re-implementing the plumbing.
pub fn append_bench_json(line: &str) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    use std::io::Write;
    match fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("warning: cannot append to {path}: {e}");
            }
        }
        Err(e) => eprintln!("warning: cannot open {path}: {e}"),
    }
}

/// Prints the standard experiment header.
pub fn banner(experiment: &str, paper_ref: &str, args: &ExpArgs) {
    println!("=== {experiment} — reproduces {paper_ref} ===");
    println!(
        "scale multiplier {:.3}, seed {}, quick={}",
        args.scale, args.seed, args.quick
    );
    println!();
}

/// Resolves a dataset by paper name at its suggested scale times the
/// experiment's `--scale` multiplier.
///
/// # Panics
///
/// Panics if the name is not one of the paper's five datasets.
pub fn dataset(args: &ExpArgs, name: &str) -> EvalDataset {
    EvalDataset::by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset {name:?}"))
        .scaled_by(args.scale)
}

/// Applies the dataset's memory-capacity scaling to a cluster (DESIGN.md
/// §2: per-node memory shrinks with dataset scale so that out-of-memory
/// crossovers land on the same datasets as in the paper).
pub fn scaled_cluster(base: ClusterSpec, ds: &EvalDataset) -> ClusterSpec {
    base.with_memory_scale(ds.memory_scale())
}

/// Renders, prints and optionally persists an experiment table.
pub fn emit(args: &ExpArgs, name: &str, table: &TextTable) {
    println!("{}", table.render());
    args.persist(name, table);
}

/// Deterministic churn batch for the streaming experiments: removes
/// `churn/2 · |E|` hash-ranked existing edges and inserts the same
/// number of hash-probed non-edges. Shared by `exp_streaming` and the
/// criterion streaming bench so both measure the identical workload.
pub fn churn_delta(graph: &CsrGraph, churn: f64, seed: u64) -> GraphDelta {
    let half = ((graph.num_edges() as f64 * churn / 2.0).round() as usize).max(1);
    let n = graph.num_vertices() as u64;
    let mut delta = GraphDelta::new();
    // Remove: hash-rank all edges, retract the lowest-ranked `half`.
    let mut ranked: Vec<(u64, u32, u32)> = graph
        .edges()
        .map(|(u, v)| {
            (
                hash2(seed, u.as_u32() as u64, v.as_u32() as u64),
                u.as_u32(),
                v.as_u32(),
            )
        })
        .collect();
    ranked.sort_unstable();
    for &(_, u, v) in ranked.iter().take(half) {
        delta.remove(u, v);
    }
    // Insert: probe hash-generated pairs until `half` non-edges found.
    let mut inserted = 0usize;
    let mut probe = 0u64;
    while inserted < half {
        let u = (hash2(seed ^ 0xadd, probe, 1) % n) as u32;
        let v = (hash2(seed ^ 0xadd, probe, 2) % n) as u32;
        probe += 1;
        if u == v || graph.has_edge(VertexId::new(u), VertexId::new(v)) {
            continue;
        }
        delta.insert(u, v);
        inserted += 1;
    }
    delta
}
