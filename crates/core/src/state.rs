//! Per-vertex program state shared by SNAPLE's three GAS steps.

use snaple_gas::size::COLLECTION_OVERHEAD;
use snaple_gas::SizeEstimate;
use snaple_graph::VertexId;

/// SNAPLE's per-vertex state (`Du` in the paper's Algorithm 2).
///
/// Populated progressively: step 1 fills [`gamma`](Self::gamma), step 2
/// fills [`sims`](Self::sims), step 3 fills
/// [`predictions`](Self::predictions).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapleVertex {
    /// Truncated neighborhood `Γ̂(u)`, sorted by vertex id.
    pub gamma: Vec<VertexId>,
    /// Sorted content tags attached to the vertex (empty without content).
    pub tags: Vec<u32>,
    /// True out-degree `|Γ(u)|`.
    pub out_degree: u32,
    /// The `klocal` sampled neighbors with their raw similarities
    /// (`Du.sims`), sorted by vertex id for O(log) membership tests.
    pub sims: Vec<(VertexId, f32)>,
    /// Aggregated multi-hop path scores promoted for the longer-path
    /// extension (empty in standard 2-hop runs), sorted by vertex id.
    pub paths: Vec<(VertexId, f32)>,
    /// Final top-`k` predicted edges with scores, best first.
    pub predictions: Vec<(VertexId, f32)>,
}

impl SnapleVertex {
    /// Raw similarity of sampled neighbor `v`, if `v` survived sampling.
    #[inline]
    pub fn sim_of(&self, v: VertexId) -> Option<f32> {
        self.sims
            .binary_search_by_key(&v, |&(id, _)| id)
            .ok()
            .map(|i| self.sims[i].1)
    }

    /// Whether `v` is in the truncated neighborhood `Γ̂(u)`.
    #[inline]
    pub fn in_gamma(&self, v: VertexId) -> bool {
        self.gamma.binary_search(&v).is_ok()
    }
}

impl SizeEstimate for SnapleVertex {
    fn estimated_bytes(&self) -> u64 {
        // gamma ids + tags + (id, sim/score) pair tables + degree scalar.
        5 * COLLECTION_OVERHEAD
            + 4
            + self.gamma.len() as u64 * 4
            + self.tags.len() as u64 * 4
            + self.sims.len() as u64 * 8
            + self.paths.len() as u64 * 8
            + self.predictions.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn sim_lookup_uses_sorted_order() {
        let s = SnapleVertex {
            sims: vec![(v(2), 0.5), (v(7), 0.25), (v(9), 0.75)],
            ..Default::default()
        };
        assert_eq!(s.sim_of(v(7)), Some(0.25));
        assert_eq!(s.sim_of(v(3)), None);
    }

    #[test]
    fn gamma_membership() {
        let s = SnapleVertex {
            gamma: vec![v(1), v(4), v(6)],
            ..Default::default()
        };
        assert!(s.in_gamma(v(4)));
        assert!(!s.in_gamma(v(5)));
    }

    #[test]
    fn size_grows_with_contents() {
        let empty = SnapleVertex::default();
        let full = SnapleVertex {
            gamma: vec![v(1); 10],
            tags: vec![7; 3],
            out_degree: 10,
            sims: vec![(v(1), 1.0); 5],
            paths: vec![(v(1), 1.0); 2],
            predictions: vec![(v(1), 1.0); 5],
        };
        assert!(full.estimated_bytes() > empty.estimated_bytes());
        assert_eq!(
            full.estimated_bytes() - empty.estimated_bytes(),
            10 * 4 + 3 * 4 + 5 * 8 + 2 * 8 + 5 * 8
        );
    }
}
