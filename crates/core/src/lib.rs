#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! **SNAPLE** — scalable link prediction for gather-apply-scatter engines.
//!
//! This crate implements the contribution of *"Scaling Out Link Prediction
//! with SNAPLE: 1 Billion Edges and Beyond"* (Kermarrec, Taïani, Tirado;
//! INRIA RR-454): a scoring framework for the link-prediction problem that
//! fits the locality constraints of GAS engines.
//!
//! # The scoring framework
//!
//! A SNAPLE *scoring configuration* is the triple of
//!
//! 1. a raw [`similarity`] metric `sim(u, v)` computed from the (truncated)
//!    neighborhoods of adjacent vertices — Jaccard's coefficient by default;
//! 2. a [`combinator`] `⊗` that turns the two raw similarities along a
//!    2-hop path `u → v → z` into a *path similarity*
//!    `sim⋆_v(u, z) = sim(u, v) ⊗ sim(v, z)` (paper §3.1);
//! 3. an [`aggregator`] `⊕` that merges the path similarities of all paths
//!    reaching the same candidate `z` into the final `score(u, z)`
//!    (paper §3.2), decomposed into an incremental `⊕pre` and a
//!    normalization `⊕post`.
//!
//! The eleven named combinations of the paper's Table 3 are available as
//! [`NamedScore`] values; arbitrary user-supplied components can be used via
//! [`ScoreComponents`].
//!
//! # Declarative score plans
//!
//! The scoring surface is *declarative*: a [`ScoreSpec`] describes one
//! score column — similarity kernel(s), combinator, aggregator, `k`,
//! weight — and parses from compact strings (`"jaccard@k16"`,
//! `"cosine*0.7+common"`, any Table 3 name; the full grammar is in the
//! [`spec`] module docs). A [`ScorePlan`] holds N specs and **compiles
//! them to one fused sweep**: the neighborhood and similarity phases run
//! once, every kernel reads the same [`NeighborhoodView`], and each
//! sampled 2-hop path is walked a single time for all columns. Each
//! column of the resulting [`ScoreMatrix`] is bit-identical to running
//! that spec alone — at roughly one traversal's gather cost instead of N:
//!
//! ```
//! use snaple_core::{ExecuteRequest, PrepareRequest, ScorePlan};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//!
//! // Four scoring configurations, one graph traversal:
//! let plan = ScorePlan::parse("linearSum, counter, PPR, jaccard@agg=max")?;
//! let prepared = plan.prepare_plan(&PrepareRequest::new(&graph, &cluster))?;
//! let matrix = prepared.execute_matrix(&ExecuteRequest::new())?;
//! assert_eq!(matrix.num_columns(), 4);
//! println!("gathers for all 4 columns: {}", matrix.stats.steps[0].gather_calls);
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! [`Snaple`] is the 1-spec special case: its `execute` path compiles the
//! configuration into a single-column plan and runs the same fused
//! engine.
//!
//! # The GAS program
//!
//! [`Snaple`] runs the paper's Algorithm 2 as three GAS steps on a
//! [`snaple_gas::Engine`]:
//!
//! 1. [`steps::NeighborhoodStep`] — collect each vertex's neighbor ids,
//!    probabilistically truncated to `thrΓ` entries;
//! 2. [`steps::SimilarityStep`] — compute raw similarities along edges and
//!    keep each vertex's `klocal` most similar neighbors
//!    (`Γmax_klocal`, eq. 11 — or the min/random variants of §5.6);
//! 3. [`steps::ScoreStep`] — combine and aggregate path similarities over
//!    the sampled 2-hop paths and keep the top-`k` candidates.
//!
//! # The prediction API
//!
//! Every backend (SNAPLE here, plus the BASELINE and Cassovary comparator
//! crates) implements the [`Predictor`] trait: one `predict` entry point
//! taking a [`PredictRequest`] — the graph, the cluster, optional
//! per-vertex content attributes, and an optional [`QuerySet`] restricting
//! the run to a subset of source vertices.
//!
//! ```
//! use snaple_core::{PredictRequest, Predictor, NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let config = SnapleConfig::new(NamedScore::LinearSum)
//!     .k(5)
//!     .klocal(Some(20))
//!     .thr_gamma(Some(200));
//! let snaple = Snaple::new(config);
//! let prediction = Predictor::predict(&snaple, &PredictRequest::new(&graph, &cluster))?;
//! assert_eq!(prediction.num_vertices(), graph.num_vertices());
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! # Serving a query set
//!
//! A production "who to follow" deployment rarely refreshes every user at
//! once — it answers for the users who are active. Attach a [`QuerySet`]
//! to the request and the GAS steps run under shrinking active-vertex
//! masks, touching only the part of the graph that can influence the
//! queried rows:
//!
//! ```
//! use snaple_core::{PredictRequest, Predictor, QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! // The 500 "currently active" users.
//! let active = QuerySet::sample(graph.num_vertices(), 500, 7);
//! let req = PredictRequest::new(&graph, &cluster).with_queries(&active);
//! let suggestions = Predictor::predict(&snaple, &req)?;
//! for user in active.iter() {
//!     // Same rows an all-vertices run would produce, at a fraction of
//!     // the work (see RunStats::total_work_ops).
//!     let _ranked = suggestions.for_vertex(user);
//! }
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! # Serving a request *stream*
//!
//! One-shot `predict` rebuilds the O(edges) vertex-cut partition per
//! call. For a stream of requests against the same graph, split the
//! lifecycle: [`Predictor::prepare`] builds the heavy state once and
//! returns a [`PreparedPredictor`] whose
//! [`execute`](PreparedPredictor::execute) answers each request — or let
//! a [`serve::Server`] do it for you, coalescing concurrent requests
//! into shared masked supersteps and demultiplexing bit-identical
//! per-request rows:
//!
//! ```
//! use snaple_core::serve::Server;
//! use snaple_core::{QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let mut server = Server::new(&snaple, &graph, &cluster)?;
//! let wave: Vec<QuerySet> = (0..4)
//!     .map(|i| QuerySet::sample(graph.num_vertices(), 50, i))
//!     .collect();
//! let responses = server.serve_batch(&wave)?; // one shared superstep run
//! assert_eq!(responses.len(), 4);
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! # Serving concurrently
//!
//! For a multi-threaded request load, the [`concurrent`] module runs the
//! same serve loop as a worker pool over one `Arc`-shared snapshot:
//! bounded-queue backpressure ([`SnapleError::QueueFull`]), per-request
//! p50/p95/p99 latency tracking, and **epoch-swapped** updates
//! ([`PreparedPredictor::fork_with_delta`]) that never stall reads —
//! with every response bit-identical to the sequential [`serve::Server`]
//! for the same seed:
//!
//! ```
//! use snaple_core::concurrent::{ConcurrentOptions, ConcurrentServer};
//! use snaple_core::{QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.005, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let outcome = ConcurrentServer::run(
//!     &snaple, &graph, &cluster,
//!     ConcurrentOptions::default().workers(2),
//!     |handle| handle.serve(&QuerySet::sample(graph.num_vertices(), 50, 7)),
//! )?;
//! let _prediction = outcome.value?;
//! println!("{}", outcome.stats.summary()); // includes p50/p95/p99
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! # Restartable serving
//!
//! Both serve layers persist through the [`store`] crate
//! (re-exported here): open a [`store::Durability`] on a data dir and
//! attach it ([`serve::Server::attach_durability`] /
//! [`concurrent::ConcurrentServer::run_prepared_durable`]). Every
//! update then appends to an fsync'd, checksummed commitlog *before*
//! it applies, and every K updates the store checkpoints a compacted
//! snapshot. After a crash, [`store::Durability::open`] recovers the
//! newest valid snapshot plus the log tail — bit-identical to the
//! never-crashed server, with torn tail frames and corrupt snapshots
//! repaired (never a panic) and reported in a
//! [`store::RecoveryReport`]:
//!
//! ```
//! use snaple_core::serve::Server;
//! use snaple_core::store::{Durability, DurabilityOptions};
//! use snaple_core::{NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let dir = std::env::temp_dir().join(format!("snaple-doc-{}", std::process::id()));
//! let graph = datasets::GOWALLA.emulate(0.005, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! // Open (or recover) the data dir, prepare on the recovered graph,
//! // replay the unsnapshotted log tail, then attach.
//! let (durable, recovered, report) =
//!     Durability::open(&dir, &graph, b"", DurabilityOptions::default())?;
//! let (graph, replay) = match recovered {
//!     Some(state) => (state.graph, state.replay),
//!     None => (graph.clone(), Vec::new()),
//! };
//! let mut server = Server::new(&snaple, &graph, &cluster)?;
//! for delta in &replay {
//!     server.apply_update(delta)?; // before attach: not re-logged
//! }
//! server.attach_durability(durable);
//! assert!(!report.repaired());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `snaple-cli serve --data-dir DIR` flag wires this up end to end;
//! `--fsync always|batch`, `--snapshot-every K`, and `--retain N` tune
//! the store. See the [`serve` module docs](serve#restartable-serving)
//! for the full protocol.
//!
//! # Serving across shards
//!
//! One process eventually runs out of cores and memory headroom. The
//! [`shard`] module splits the serving runtime into `N` independent
//! shards — each an isolated runtime owning the vertices whose master
//! partition falls in its block — fronted by a [`ShardRouter`] that
//! scatters each request to the owning shards and gathers the disjoint
//! row sets back together. Shards are plain threads by default
//! ([`ShardTransport::Threads`]) or `snaple-shardd` child processes
//! ([`ShardTransport::Processes`]); both speak the same checksummed
//! binary wire protocol, and both serve rows **bit-identical** to a
//! single-process [`ConcurrentServer`] — including across
//! [`GraphDelta`] updates, which broadcast to every shard as local
//! epoch swaps. A shard that dies mid-flight surfaces as
//! [`SnapleError::ShardFailed`] on the affected requests; the router
//! keeps serving the surviving shards. See the [`shard`] module docs
//! for the topology, the wire framing, and the thread/process
//! trade-off:
//!
//! ```no_run
//! use snaple_core::shard::{ShardOptions, ShardRouter, ShardSpec, ShardTransport};
//! use snaple_core::{QuerySet, NamedScore, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.005, 42);
//! let spec = ShardSpec::Single(SnapleConfig::new(NamedScore::LinearSum));
//! let outcome = ShardRouter::run(
//!     &spec, &graph, &ClusterSpec::type_ii(8),
//!     ShardOptions::new().shards(4).transport(ShardTransport::Threads),
//!     |handle| handle.serve(&QuerySet::sample(graph.num_vertices(), 50, 7)),
//! )?;
//! let _prediction = outcome.value?;
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! # Performance notes
//!
//! The gather hot path — sorted-set intersection over adjacency lists —
//! is tiered, and every tier is **bit-identical** (the bit-identity
//! suites hold all of them to the same results):
//!
//! * [`similarity::intersection_size`] dispatches per pair: when one
//!   list is more than 16× longer than the other it gallops
//!   (`O(short · log long)`), when both lists have at least 16 entries
//!   *and* the crate is built with the **`simd` cargo feature** it takes
//!   a block-compare path (8-wide branch-free equality blocks that LLVM
//!   auto-vectorizes), and otherwise it falls back to the linear merge
//!   that [`similarity::intersection_size_scalar`] always runs.
//! * [`Similarity::score_stripe`] is the batched kernel entry point: the
//!   fused sweep hands each kernel a whole contiguous *stripe* of
//!   neighbor views (one virtual dispatch per gather run instead of per
//!   pair, `Γ̂(u)` hot in cache across the stripe). The default
//!   implementation loops [`Similarity::score`], so custom kernels keep
//!   working unchanged; overrides must stay bit-identical to the
//!   per-pair path.
//! * Custom [`snaple_gas::GasStep`]s can likewise override
//!   `gather_run` to consume whole neighbor runs; overrides must
//!   replicate the per-edge accounting protocol documented there or the
//!   byte-exact cluster statistics drift.
//! * Degree-ordered vertex relabeling (`snaple_graph::Relabeling`) is an
//!   opt-in preprocessing pass that packs hub rows first for cache
//!   locality; predictions map back through the inverse permutation
//!   (`tests/relabeling.rs` pins down which configurations round-trip
//!   bit-identically).
//!
//! The `exp-gather` bench binary races the scalar baseline against the
//! striped/vectorized path on an emulated Orkut graph and writes
//! `BENCH_gather.json` (one JSON line per kernel with
//! `scalar_seconds`, `striped_seconds`, and `speedup`); CI enforces the
//! speedup floor on every push. Criterion micros live in
//! `crates/bench/benches/micro.rs` (`intersection-skew`,
//! `kernel-stripe`, `relabel` groups).

pub mod aggregator;
pub mod combinator;
pub mod concurrent;
pub mod config;
pub mod error;
pub mod plan;
pub mod predictor;
pub mod predictor_api;
pub mod serve;
pub mod shard;
pub mod similarity;
pub mod spec;
pub mod state;
pub mod steps;
pub(crate) mod sync;
pub mod topk;

pub use aggregator::Aggregator;
pub use combinator::Combinator;
pub use concurrent::{
    ConcurrentOptions, ConcurrentOutcome, ConcurrentServer, PendingPrediction, ServeHandle,
};
pub use config::{NamedScore, PathLength, ScoreComponents, SelectionPolicy, SnapleConfig};
pub use error::SnapleError;
pub use plan::{PlanConfig, PreparedPlan, ScoreMatrix, ScorePlan};
pub use predictor::{Prediction, PreparedSnaple, Snaple};
pub use predictor_api::{
    ExecuteRequest, PredictRequest, Predictor, PrepareRequest, PreparedPredictor, QuerySet,
    SetupStats,
};
pub use serve::{LatencyHistogram, Server, ServerStats};
pub use shard::{
    RouterHandle, ShardOptions, ShardOutcome, ShardRouter, ShardSpec, ShardTransport, WireError,
};
pub use similarity::{NeighborhoodView, Similarity};
pub use snaple_gas::DeltaStats;
pub use snaple_graph::GraphDelta;
pub use snaple_store as store;
pub use spec::{Registry, ScoreSpec};
pub use state::SnapleVertex;
