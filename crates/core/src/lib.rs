#![warn(missing_docs)]

//! **SNAPLE** — scalable link prediction for gather-apply-scatter engines.
//!
//! This crate implements the contribution of *"Scaling Out Link Prediction
//! with SNAPLE: 1 Billion Edges and Beyond"* (Kermarrec, Taïani, Tirado;
//! INRIA RR-454): a scoring framework for the link-prediction problem that
//! fits the locality constraints of GAS engines.
//!
//! # The scoring framework
//!
//! A SNAPLE *scoring configuration* is the triple of
//!
//! 1. a raw [`similarity`] metric `sim(u, v)` computed from the (truncated)
//!    neighborhoods of adjacent vertices — Jaccard's coefficient by default;
//! 2. a [`combinator`] `⊗` that turns the two raw similarities along a
//!    2-hop path `u → v → z` into a *path similarity*
//!    `sim⋆_v(u, z) = sim(u, v) ⊗ sim(v, z)` (paper §3.1);
//! 3. an [`aggregator`] `⊕` that merges the path similarities of all paths
//!    reaching the same candidate `z` into the final `score(u, z)`
//!    (paper §3.2), decomposed into an incremental `⊕pre` and a
//!    normalization `⊕post`.
//!
//! The eleven named combinations of the paper's Table 3 are available as
//! [`ScoreSpec`] values; arbitrary user-supplied components can be used via
//! [`ScoreComponents`].
//!
//! # The GAS program
//!
//! [`Snaple`] runs the paper's Algorithm 2 as three GAS steps on a
//! [`snaple_gas::Engine`]:
//!
//! 1. [`steps::NeighborhoodStep`] — collect each vertex's neighbor ids,
//!    probabilistically truncated to `thrΓ` entries;
//! 2. [`steps::SimilarityStep`] — compute raw similarities along edges and
//!    keep each vertex's `klocal` most similar neighbors
//!    (`Γmax_klocal`, eq. 11 — or the min/random variants of §5.6);
//! 3. [`steps::ScoreStep`] — combine and aggregate path similarities over
//!    the sampled 2-hop paths and keep the top-`k` candidates.
//!
//! # The prediction API
//!
//! Every backend (SNAPLE here, plus the BASELINE and Cassovary comparator
//! crates) implements the [`Predictor`] trait: one `predict` entry point
//! taking a [`PredictRequest`] — the graph, the cluster, optional
//! per-vertex content attributes, and an optional [`QuerySet`] restricting
//! the run to a subset of source vertices.
//!
//! ```
//! use snaple_core::{PredictRequest, Predictor, ScoreSpec, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let config = SnapleConfig::new(ScoreSpec::LinearSum)
//!     .k(5)
//!     .klocal(Some(20))
//!     .thr_gamma(Some(200));
//! let snaple = Snaple::new(config);
//! let prediction = Predictor::predict(&snaple, &PredictRequest::new(&graph, &cluster))?;
//! assert_eq!(prediction.num_vertices(), graph.num_vertices());
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! # Serving a query set
//!
//! A production "who to follow" deployment rarely refreshes every user at
//! once — it answers for the users who are active. Attach a [`QuerySet`]
//! to the request and the GAS steps run under shrinking active-vertex
//! masks, touching only the part of the graph that can influence the
//! queried rows:
//!
//! ```
//! use snaple_core::{PredictRequest, Predictor, QuerySet, ScoreSpec, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(ScoreSpec::LinearSum).klocal(Some(20)));
//!
//! // The 500 "currently active" users.
//! let active = QuerySet::sample(graph.num_vertices(), 500, 7);
//! let req = PredictRequest::new(&graph, &cluster).with_queries(&active);
//! let suggestions = Predictor::predict(&snaple, &req)?;
//! for user in active.iter() {
//!     // Same rows an all-vertices run would produce, at a fraction of
//!     // the work (see RunStats::total_work_ops).
//!     let _ranked = suggestions.for_vertex(user);
//! }
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! # Serving a request *stream*
//!
//! One-shot `predict` rebuilds the O(edges) vertex-cut partition per
//! call. For a stream of requests against the same graph, split the
//! lifecycle: [`Predictor::prepare`] builds the heavy state once and
//! returns a [`PreparedPredictor`] whose
//! [`execute`](PreparedPredictor::execute) answers each request — or let
//! a [`serve::Server`] do it for you, coalescing concurrent requests
//! into shared masked supersteps and demultiplexing bit-identical
//! per-request rows:
//!
//! ```
//! use snaple_core::serve::Server;
//! use snaple_core::{QuerySet, ScoreSpec, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(ScoreSpec::LinearSum).klocal(Some(20)));
//!
//! let mut server = Server::new(&snaple, &graph, &cluster)?;
//! let wave: Vec<QuerySet> = (0..4)
//!     .map(|i| QuerySet::sample(graph.num_vertices(), 50, i))
//!     .collect();
//! let responses = server.serve_batch(&wave)?; // one shared superstep run
//! assert_eq!(responses.len(), 4);
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

pub mod aggregator;
pub mod combinator;
pub mod config;
pub mod error;
pub mod predictor;
pub mod predictor_api;
pub mod serve;
pub mod similarity;
pub mod state;
pub mod steps;
pub mod topk;

pub use aggregator::Aggregator;
pub use combinator::Combinator;
pub use config::{PathLength, ScoreComponents, ScoreSpec, SelectionPolicy, SnapleConfig};
pub use error::SnapleError;
pub use predictor::{Prediction, PreparedSnaple, Snaple};
pub use predictor_api::{
    ExecuteRequest, PredictRequest, Predictor, PrepareRequest, PreparedPredictor, QuerySet,
    SetupStats,
};
pub use serve::{Server, ServerStats};
pub use similarity::{NeighborhoodView, Similarity};
pub use snaple_gas::DeltaStats;
pub use snaple_graph::GraphDelta;
pub use state::SnapleVertex;
