//! Raw vertex similarity metrics (`sim(u, v)`, paper eq. 6).
//!
//! A raw similarity compares two *adjacent* vertices from their (truncated)
//! neighborhoods — the only topological information a GAS vertex program
//! can reach cheaply. The paper uses Jaccard's coefficient throughout its
//! evaluation and `1/|Γ(v)|` for the PPR-like configuration; the other
//! metrics here are classical alternatives that slot into the same
//! framework (see DESIGN.md §8).

use std::fmt::Debug;
use std::sync::Arc;

use snaple_graph::VertexId;

/// What a similarity metric may see of a vertex: its truncated, sorted
/// neighbor list `Γ̂`, its true out-degree `|Γ|`, and (optionally) the
/// vertex's *content* — a sorted bag of tag ids, the "application-dependent
/// knowledge attached to vertices" of the paper's §2.1/§3.1 content
/// extension.
#[derive(Copy, Clone, Debug)]
pub struct NeighborhoodView<'a> {
    /// Truncated neighborhood, sorted by vertex id.
    pub neighbors: &'a [VertexId],
    /// True (untruncated) out-degree.
    pub degree: usize,
    /// Sorted content tags (empty when the graph carries no content).
    pub tags: &'a [u32],
}

impl<'a> NeighborhoodView<'a> {
    /// Creates a topology-only view.
    pub fn new(neighbors: &'a [VertexId], degree: usize) -> Self {
        NeighborhoodView {
            neighbors,
            degree,
            tags: &[],
        }
    }

    /// Creates a view carrying vertex content.
    pub fn with_tags(neighbors: &'a [VertexId], degree: usize, tags: &'a [u32]) -> Self {
        NeighborhoodView {
            neighbors,
            degree,
            tags,
        }
    }
}

/// Size of the intersection of two sorted tag bags.
fn tag_intersection(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Length ratio beyond which [`intersection_size`] switches from the
/// linear two-pointer merge to galloping search.
///
/// Galloping costs `O(|short| · log |long|)` against the merge's
/// `O(|short| + |long|)`; it only wins when the long side dwarfs the
/// short one, and on near-equal lengths its branchier inner loop loses to
/// the merge's tight scan. The crossover is coarse — anywhere in the
/// 8–32× band measures within noise on the `micro` bench — so a
/// round power of two keeps the check cheap.
const GALLOP_RATIO: usize = 16;

/// Minimum length of the *short* side for the block-compare path (cargo
/// feature `simd`) to engage on near-equal shapes.
///
/// Below this the merge's startup-free scan wins; at 16+ elements both
/// sides supply at least two full [`BLOCK`]-element blocks, so the
/// vectorized all-pairs compares amortize. Length-skewed shapes never get
/// here — the `GALLOP_RATIO` check above dispatches them first.
#[cfg_attr(not(feature = "simd"), allow(dead_code))]
const BLOCK_MIN_LEN: usize = 16;

/// Elements compared per block by [`block_intersection`] — eight `u32`
/// lanes, one AVX2 register or two SSE2/NEON registers.
const BLOCK: usize = 8;

/// Size of the intersection of two sorted vertex lists.
///
/// Three strategies, dispatched by shape:
///
/// * **galloping** when one list is more than `GALLOP_RATIO`× longer:
///   each element of the short list is located in the long one by
///   exponential probe + binary search, `O(|short| · log |long|)` — the
///   hub-meets-leaf shape that dominates social graphs;
/// * **block compare** (cargo feature `simd`) for near-equal lengths of at
///   least `BLOCK_MIN_LEN`: fixed 8-element blocks of both lists are
///   compared all-pairs with branch-free equality masks the compiler
///   auto-vectorizes to SIMD lanes, advancing whichever block exhausts
///   first;
/// * **linear two-pointer merge** otherwise, and always when the `simd`
///   feature is off.
///
/// All paths count identically — [`intersection_size_scalar`] is the
/// reference oracle, and the unit + property suites here check
/// bit-identity of every path against it.
///
/// Both inputs **must** be sorted ascending and duplicate-free: the fast
/// paths silently miscount otherwise (they never look backwards, and the
/// block path counts all-pairs matches). Debug builds assert sortedness;
/// every adjacency surface in the workspace (CSR rows, `Γ̂` tables, `sims`
/// tables) is sorted *and* deduplicated by construction.
pub fn intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    debug_assert!(
        a.windows(2).all(|w| w[0] <= w[1]),
        "intersection_size: first input is not sorted"
    );
    debug_assert!(
        b.windows(2).all(|w| w[0] <= w[1]),
        "intersection_size: second input is not sorted"
    );
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() > short.len().saturating_mul(GALLOP_RATIO) {
        return gallop_intersection(short, long);
    }
    #[cfg(feature = "simd")]
    if short.len() >= BLOCK_MIN_LEN {
        return block_intersection(a, b);
    }
    merge_intersection(a, b)
}

/// The reference linear two-pointer merge — the scalar baseline every
/// fast path (galloping, block compare) must match bit for bit.
///
/// Public so benches and experiments (`exp_gather`, `micro`) can measure
/// the dispatching [`intersection_size`] against an honest scalar
/// baseline; inputs must be sorted ascending like every other path.
pub fn intersection_size_scalar(a: &[VertexId], b: &[VertexId]) -> usize {
    merge_intersection(a, b)
}

#[inline]
fn merge_intersection(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Intersection count by fixed-size block compares: walk both lists one
/// `BLOCK`-element block at a time, count equal pairs across the two
/// current blocks with branch-free all-pairs equality (64 compares that
/// LLVM lowers to 8 splat-and-compare SIMD ops), and advance whichever
/// block's maximum is not ahead. The sub-`BLOCK` tails fall back to the
/// scalar merge.
///
/// Requires duplicate-free sorted input (all-pairs counting would multiply
/// duplicated values); correctness of the tail hand-off relies on it too —
/// any element beyond a consumed block is strictly greater than the
/// consumed block's maximum, so no cross-block match is ever missed.
///
/// Compiled unconditionally so the test suite property-checks it under
/// both feature configurations; only *dispatched* under feature `simd`.
#[cfg_attr(not(feature = "simd"), allow(dead_code))]
fn block_intersection(a: &[VertexId], b: &[VertexId]) -> usize {
    debug_assert!(
        a.windows(2).all(|w| w[0] < w[1]) && b.windows(2).all(|w| w[0] < w[1]),
        "block_intersection: inputs must be strictly increasing (sorted, deduplicated)"
    );
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i + BLOCK <= a.len() && j + BLOCK <= b.len() {
        let block_a: &[VertexId; BLOCK] = a[i..i + BLOCK].try_into().expect("exact block");
        let block_b: &[VertexId; BLOCK] = b[j..j + BLOCK].try_into().expect("exact block");
        n += block_match_count(block_a, block_b);
        let a_max = block_a[BLOCK - 1];
        let b_max = block_b[BLOCK - 1];
        // On ties advance both: every match involving either block is
        // already counted, and nothing later can equal a consumed value.
        if a_max <= b_max {
            i += BLOCK;
        }
        if b_max <= a_max {
            j += BLOCK;
        }
    }
    n + merge_intersection(&a[i..], &b[j..])
}

/// Matches between two blocks, as branch-free equality masks: for each
/// element of `a` OR together its compares against all of `b` (at most one
/// can hit on duplicate-free input). The fixed trip counts and the absence
/// of data-dependent branches are what let the auto-vectorizer turn this
/// into packed 8-lane compares.
#[inline]
fn block_match_count(a: &[VertexId; BLOCK], b: &[VertexId; BLOCK]) -> usize {
    let mut hits = 0u32;
    for &x in a {
        let mut hit = 0u32;
        for &y in b {
            hit |= u32::from(x == y);
        }
        hits += hit;
    }
    hits as usize
}

/// Intersection count by galloping: for each element of `short`, probe
/// forward through `long` at doubling strides from the previous match
/// position, then binary-search the bracketed window. Positions only move
/// forward, so the whole pass touches `O(|short| · log |long|)` elements
/// of `long` even when the lists barely overlap.
fn gallop_intersection(short: &[VertexId], long: &[VertexId]) -> usize {
    let mut base = 0; // first index of `long` still in play
    let mut n = 0;
    for &x in short {
        if base >= long.len() {
            break;
        }
        // Exponential probe: find a window [base + lo, base + hi) with
        // long[base + lo - 1] < x <= long[base + hi - 1] (when in range).
        let rest = &long[base..];
        let mut hi = 1;
        while hi < rest.len() && rest[hi - 1] < x {
            hi <<= 1;
        }
        let lo = hi >> 1;
        let window = &rest[lo.min(rest.len())..hi.min(rest.len())];
        let found = window.partition_point(|&y| y < x);
        let pos = lo.min(rest.len()) + found;
        if pos < rest.len() && rest[pos] == x {
            n += 1;
            base += pos + 1; // duplicates-free lists: advance past the match
        } else {
            base += pos;
        }
    }
    n
}

/// A raw similarity metric on neighborhoods.
///
/// Implementations must be symmetric in spirit but are always called with
/// `u` = the scoring vertex and `v` = its neighbor, so degree-based metrics
/// like [`InverseDegree`] may be deliberately asymmetric (the paper's PPR
/// row uses `1/|Γ(v)|`).
pub trait Similarity: Send + Sync + Debug {
    /// Stable name for reports ("jaccard", ...).
    fn name(&self) -> &str;

    /// Computes `sim(u, v) >= 0`.
    fn score(&self, u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32;

    /// Scores one vertex against a contiguous *stripe* of neighbors,
    /// writing `score(u, vs[i])` into `out[i]` — the batched entry point
    /// the fused sweep drives so kernels see whole neighbor runs at once
    /// (one virtual dispatch per stripe instead of per pair, and `Γ̂(u)`
    /// stays hot in cache across the stripe).
    ///
    /// The default implementation loops [`Similarity::score`], so custom
    /// kernels keep working unchanged. Overrides **must** produce
    /// bit-identical values to the per-pair path — every bit-identity
    /// suite in the workspace (fused-vs-standalone plans, shard serving,
    /// concurrent serving) holds implementations to that contract.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `vs`.
    fn score_stripe(&self, u: NeighborhoodView<'_>, vs: &[NeighborhoodView<'_>], out: &mut [f32]) {
        assert!(
            out.len() >= vs.len(),
            "score_stripe: output stripe holds {} slots for {} neighbors",
            out.len(),
            vs.len()
        );
        for (v, slot) in vs.iter().zip(out.iter_mut()) {
            *slot = self.score(u, *v);
        }
    }
}

/// Jaccard's coefficient `|Γ̂(u) ∩ Γ̂(v)| / |Γ̂(u) ∪ Γ̂(v)|` — the paper's
/// default raw similarity.
#[derive(Copy, Clone, Debug, Default)]
pub struct Jaccard;

/// The process-wide shared [`Jaccard`] instance.
///
/// Components that use Jaccard both for scoring and for eq. 11's
/// neighbor-selection ranking should hold *clones of the same `Arc`*:
/// [`crate::ScoreComponents::shares_selection_similarity`] detects
/// sharing by `Arc` identity (never by the kernel's self-reported name,
/// which a custom kernel could collide with), and execution then
/// computes the value once per edge instead of twice. Every named
/// configuration and every parsed spec resolves its Jaccard uses through
/// this instance.
pub fn shared_jaccard() -> Arc<dyn Similarity> {
    static SHARED: std::sync::OnceLock<Arc<dyn Similarity>> = std::sync::OnceLock::new();
    SHARED.get_or_init(|| Arc::new(Jaccard)).clone()
}

impl Similarity for Jaccard {
    fn name(&self) -> &str {
        "jaccard"
    }

    fn score(&self, u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32 {
        let inter = intersection_size(u.neighbors, v.neighbors);
        let union = u.neighbors.len() + v.neighbors.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f32 / union as f32
        }
    }
}

/// Raw common-neighbor count `|Γ̂(u) ∩ Γ̂(v)|` (Liben-Nowell & Kleinberg).
#[derive(Copy, Clone, Debug, Default)]
pub struct CommonNeighbors;

impl Similarity for CommonNeighbors {
    fn name(&self) -> &str {
        "common-neighbors"
    }

    fn score(&self, u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32 {
        intersection_size(u.neighbors, v.neighbors) as f32
    }
}

/// Cosine similarity `|Γ̂(u) ∩ Γ̂(v)| / sqrt(|Γ̂(u)|·|Γ̂(v)|)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Cosine;

impl Similarity for Cosine {
    fn name(&self) -> &str {
        "cosine"
    }

    fn score(&self, u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32 {
        let denom = (u.neighbors.len() as f32 * v.neighbors.len() as f32).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            intersection_size(u.neighbors, v.neighbors) as f32 / denom
        }
    }
}

/// Sørensen–Dice coefficient `2·|Γ̂(u) ∩ Γ̂(v)| / (|Γ̂(u)| + |Γ̂(v)|)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Dice;

impl Similarity for Dice {
    fn name(&self) -> &str {
        "dice"
    }

    fn score(&self, u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32 {
        let total = u.neighbors.len() + v.neighbors.len();
        if total == 0 {
            0.0
        } else {
            2.0 * intersection_size(u.neighbors, v.neighbors) as f32 / total as f32
        }
    }
}

/// Szymkiewicz–Simpson overlap `|Γ̂(u) ∩ Γ̂(v)| / min(|Γ̂(u)|, |Γ̂(v)|)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Overlap;

impl Similarity for Overlap {
    fn name(&self) -> &str {
        "overlap"
    }

    fn score(&self, u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32 {
        let min = u.neighbors.len().min(v.neighbors.len());
        if min == 0 {
            0.0
        } else {
            intersection_size(u.neighbors, v.neighbors) as f32 / min as f32
        }
    }
}

/// `1 / |Γ(v)|` — the transition probability of a uniform random walk, used
/// by the paper's PPR-like configuration (Table 3, gray row).
#[derive(Copy, Clone, Debug, Default)]
pub struct InverseDegree;

impl Similarity for InverseDegree {
    fn name(&self) -> &str {
        "inverse-degree"
    }

    fn score(&self, _u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32 {
        if v.degree == 0 {
            0.0
        } else {
            1.0 / v.degree as f32
        }
    }
}

/// Content-aware similarity (paper §3.1: "this approach can be extended to
/// content-based metrics by simply including data attached to vertices in
/// f"): a convex blend of topological Jaccard over neighborhoods and
/// Jaccard over the vertices' content tags.
#[derive(Copy, Clone, Debug)]
pub struct ContentBlend {
    /// Weight of the topological term (`1.0` = pure structure,
    /// `0.0` = pure content).
    pub topology_weight: f32,
}

impl ContentBlend {
    /// Creates a blend.
    ///
    /// # Panics
    ///
    /// Panics if `topology_weight` is non-finite (NaN, ±∞) or outside
    /// `[0, 1]`; use [`ContentBlend::try_new`] for a fallible variant.
    pub fn new(topology_weight: f32) -> Self {
        ContentBlend::try_new(topology_weight).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects non-finite weights and weights
    /// outside `[0, 1]` instead of panicking.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending weight.
    pub fn try_new(topology_weight: f32) -> Result<Self, String> {
        if !topology_weight.is_finite() {
            return Err(format!(
                "topology_weight must be finite, got {topology_weight}"
            ));
        }
        if !(0.0..=1.0).contains(&topology_weight) {
            return Err(format!(
                "topology_weight must be in [0, 1], got {topology_weight}"
            ));
        }
        Ok(ContentBlend { topology_weight })
    }
}

impl Similarity for ContentBlend {
    fn name(&self) -> &str {
        "content-blend"
    }

    fn score(&self, u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32 {
        let topo = Jaccard.score(u, v);
        let inter = tag_intersection(u.tags, v.tags);
        let union = u.tags.len() + v.tags.len() - inter;
        let content = if union == 0 {
            0.0
        } else {
            inter as f32 / union as f32
        };
        self.topology_weight * topo + (1.0 - self.topology_weight) * content
    }
}

/// A weighted sum of several kernels `Σ wᵢ·simᵢ(u, v)` — the blend form
/// of the [spec grammar](crate::spec) (`cosine*0.7+common`).
///
/// Weights must be finite and positive; a part with weight `1.0` renders
/// without its `*` factor in the blend's name.
#[derive(Clone, Debug)]
pub struct WeightedBlend {
    name: String,
    parts: Vec<(Arc<dyn Similarity>, f32)>,
}

impl WeightedBlend {
    /// Creates a blend from `(kernel, weight)` parts.
    ///
    /// # Panics
    ///
    /// Panics on an empty part list or a non-finite/non-positive weight;
    /// the [spec parser](crate::spec::ScoreSpec::parse) validates both
    /// before constructing one.
    pub fn new(parts: Vec<(Arc<dyn Similarity>, f32)>) -> Self {
        assert!(!parts.is_empty(), "a kernel blend needs at least one part");
        for (kernel, weight) in &parts {
            assert!(
                weight.is_finite() && *weight > 0.0,
                "blend weight of {} must be finite and positive, got {weight}",
                kernel.name()
            );
        }
        let name = parts
            .iter()
            .map(|(kernel, weight)| {
                if *weight == 1.0 {
                    kernel.name().to_owned()
                } else {
                    format!("{}*{weight}", kernel.name())
                }
            })
            .collect::<Vec<_>>()
            .join("+");
        WeightedBlend { name, parts }
    }
}

impl Similarity for WeightedBlend {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, u: NeighborhoodView<'_>, v: NeighborhoodView<'_>) -> f32 {
        self.parts
            .iter()
            .map(|(kernel, weight)| weight * kernel.score(u, v))
            .sum()
    }
}

/// `1` for every edge — the degenerate similarity of the paper's *counter*
/// configuration, which reduces scoring to counting 2-hop paths.
#[derive(Copy, Clone, Debug, Default)]
pub struct Unit;

impl Similarity for Unit {
    fn name(&self) -> &str {
        "unit"
    }

    fn score(&self, _u: NeighborhoodView<'_>, _v: NeighborhoodView<'_>) -> f32 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<VertexId> {
        xs.iter().copied().map(VertexId::new).collect()
    }

    fn view<'a>(n: &'a [VertexId]) -> NeighborhoodView<'a> {
        NeighborhoodView::new(n, n.len())
    }

    #[test]
    fn intersection_of_sorted_lists() {
        let a = ids(&[1, 3, 5, 7]);
        let b = ids(&[2, 3, 4, 7, 9]);
        assert_eq!(intersection_size(&a, &b), 2);
        assert_eq!(intersection_size(&a, &[]), 0);
        assert_eq!(intersection_size(&a, &a), 4);
    }

    /// Reference linear merge, kept verbatim so the galloping fast path has
    /// an independent oracle.
    fn linear_intersection(a: &[VertexId], b: &[VertexId]) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    #[test]
    fn galloping_path_matches_linear_merge_on_skewed_lists() {
        // Long side is 1000 elements, short side small enough that the
        // ratio check routes through `gallop_intersection`.
        let long: Vec<VertexId> = (0..1000).map(|v| VertexId::new(v * 3)).collect();
        let cases: Vec<Vec<VertexId>> = vec![
            ids(&[]),                                         // empty short side
            ids(&[0]),                                        // single match at the front
            ids(&[2997]),                                     // single match at the back
            ids(&[1]),                                        // single miss
            ids(&[5000, 6000]),                               // all past the end of `long`
            ids(&[0, 3, 6, 9]),                               // dense prefix, all hits
            ids(&[1, 4, 7, 10]),                              // dense prefix, all misses
            ids(&[0, 500, 1500, 2998, 2999]),                 // mixed hits and misses
            (0..40).map(|v| VertexId::new(v * 81)).collect(), // strided
        ];
        for short in &cases {
            let expect = linear_intersection(short, &long);
            assert_eq!(intersection_size(short, &long), expect, "short={short:?}");
            assert_eq!(
                intersection_size(&long, short),
                expect,
                "swapped short={short:?}"
            );
            assert_eq!(gallop_intersection(short, &long), expect, "direct gallop");
        }
    }

    #[test]
    fn galloping_path_matches_linear_merge_exhaustively() {
        // Pseudo-random short/long pairs; the direct `gallop_intersection`
        // call exercises the fast path even when the public dispatch would
        // pick the merge.
        let mut state = 0x5eed_cafe_u64;
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        for trial in 0..200 {
            let short_len = next(12) as usize;
            let long_len = 1 + next(300) as usize;
            let mut short: Vec<u32> = (0..short_len).map(|_| next(400)).collect();
            let mut long: Vec<u32> = (0..long_len).map(|_| next(400)).collect();
            short.sort_unstable();
            short.dedup();
            long.sort_unstable();
            long.dedup();
            let short = ids(&short);
            let long = ids(&long);
            let expect = linear_intersection(&short, &long);
            assert_eq!(gallop_intersection(&short, &long), expect, "trial {trial}");
            assert_eq!(intersection_size(&short, &long), expect, "trial {trial}");
        }
    }

    #[test]
    fn block_path_matches_linear_merge() {
        let strided = |n: u32, stride: u32, offset: u32| -> Vec<VertexId> {
            (0..n).map(|v| VertexId::new(v * stride + offset)).collect()
        };
        let cases: Vec<(Vec<VertexId>, Vec<VertexId>)> = vec![
            (vec![], vec![]),                          // both empty
            (strided(40, 2, 0), vec![]),               // one empty
            (strided(40, 2, 0), strided(40, 2, 1)),    // fully disjoint, interleaved
            (strided(40, 1, 0), strided(40, 1, 100)),  // disjoint, no overlap in range
            (strided(40, 3, 0), strided(40, 3, 0)),    // full overlap
            (strided(64, 2, 0), strided(64, 3, 0)),    // partial, equal lengths
            (strided(64, 2, 0), strided(17, 5, 3)),    // partial, unequal lengths
            (strided(7, 1, 0), strided(7, 1, 3)),      // shorter than one block
            (strided(8, 1, 0), strided(8, 1, 4)),      // exactly one block
            (strided(9, 1, 0), strided(23, 1, 5)),     // block + tail on both sides
            (strided(100, 7, 0), strided(100, 11, 0)), // sparse hits (multiples of 77)
            (strided(33, 1, 0), strided(200, 13, 20)), // skewed but under gallop ratio? no: direct call
        ];
        for (a, b) in &cases {
            let expect = linear_intersection(a, b);
            assert_eq!(block_intersection(a, b), expect, "a={a:?} b={b:?}");
            assert_eq!(block_intersection(b, a), expect, "swapped a={a:?} b={b:?}");
        }
    }

    #[test]
    fn dispatch_boundaries_agree_with_linear_merge() {
        // Length pairs straddling both dispatch thresholds: the 16×
        // galloping ratio (long > short·16) and the SIMD block minimum
        // (short ≥ 16). Every combination must count identically no
        // matter which strategy the public dispatch picks, under either
        // feature configuration.
        let shorts = [0usize, 1, 2, 15, 16, 17];
        let longs = [0usize, 1, 15, 16, 17, 239, 240, 241, 255, 256, 257, 512];
        for &sl in &shorts {
            for &ll in &longs {
                // Interleave multiples of 2 and 3 so hits exist (multiples
                // of 6) without being total.
                let short: Vec<VertexId> = (0..sl as u32).map(|v| VertexId::new(v * 2)).collect();
                let long: Vec<VertexId> = (0..ll as u32).map(|v| VertexId::new(v * 3)).collect();
                let expect = linear_intersection(&short, &long);
                assert_eq!(
                    intersection_size(&short, &long),
                    expect,
                    "short={sl} long={ll}"
                );
                assert_eq!(
                    intersection_size(&long, &short),
                    expect,
                    "swapped short={sl} long={ll}"
                );
                assert_eq!(
                    intersection_size_scalar(&short, &long),
                    expect,
                    "scalar short={sl} long={ll}"
                );
            }
        }
        // Exactly at the galloping boundary: long == short·16 merges,
        // long == short·16 + 1 gallops; both must agree with the oracle.
        for extra in [0usize, 1] {
            let short: Vec<VertexId> = (0..16u32).map(|v| VertexId::new(v * 33)).collect();
            let long: Vec<VertexId> = (0..(16 * 16 + extra) as u32).map(VertexId::new).collect();
            let expect = linear_intersection(&short, &long);
            assert_eq!(intersection_size(&short, &long), expect, "extra={extra}");
            assert_eq!(gallop_intersection(&short, &long), expect, "extra={extra}");
            assert_eq!(block_intersection(&short, &long), expect, "extra={extra}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// All three strategies — linear merge, galloping, block compare —
        /// and the public dispatch count identically on arbitrary sorted
        /// duplicate-free lists, regardless of which path the dispatch
        /// would pick for the shape.
        #[test]
        fn all_intersection_paths_are_bit_identical(
            mut a in proptest::collection::vec(0u32..600, 0..80),
            mut b in proptest::collection::vec(0u32..600, 0..400),
        ) {
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let a = ids(&a);
            let b = ids(&b);
            let expect = linear_intersection(&a, &b);
            proptest::prop_assert_eq!(intersection_size(&a, &b), expect);
            proptest::prop_assert_eq!(intersection_size(&b, &a), expect);
            proptest::prop_assert_eq!(intersection_size_scalar(&a, &b), expect);
            let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
            proptest::prop_assert_eq!(gallop_intersection(short, long), expect);
            proptest::prop_assert_eq!(block_intersection(&a, &b), expect);
            proptest::prop_assert_eq!(block_intersection(&b, &a), expect);
        }

        /// The batched stripe entry point is bit-identical to per-pair
        /// scoring for every kernel, via the default implementation.
        #[test]
        fn score_stripe_matches_per_pair_scores(
            mut base in proptest::collection::vec(0u32..200, 1..40),
            stripe_seeds in proptest::collection::vec(0u32..97, 1..12),
        ) {
            base.sort_unstable();
            base.dedup();
            let u_list = ids(&base);
            let u = view(&u_list);
            let neighbor_lists: Vec<Vec<VertexId>> = stripe_seeds
                .iter()
                .map(|&s| {
                    let mut l: Vec<u32> = (0..(s % 19)).map(|i| (s + i * 7) % 200).collect();
                    l.sort_unstable();
                    l.dedup();
                    ids(&l)
                })
                .collect();
            let views: Vec<NeighborhoodView<'_>> =
                neighbor_lists.iter().map(|l| view(l)).collect();
            for kernel in [
                &Jaccard as &dyn Similarity,
                &CommonNeighbors,
                &Cosine,
                &Dice,
                &Overlap,
                &InverseDegree,
                &Unit,
            ] {
                let mut out = vec![0f32; views.len()];
                kernel.score_stripe(u, &views, &mut out);
                for (i, v) in views.iter().enumerate() {
                    let pair = kernel.score(u, *v);
                    proptest::prop_assert_eq!(
                        pair.to_bits(),
                        out[i].to_bits(),
                        "{} diverged at stripe slot {}",
                        kernel.name(),
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn jaccard_matches_hand_computation() {
        let a = ids(&[1, 2, 3]);
        let b = ids(&[2, 3, 4, 5]);
        // |∩| = 2, |∪| = 5
        assert!((Jaccard.score(view(&a), view(&b)) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn jaccard_bounds_and_identity() {
        let a = ids(&[1, 2, 3]);
        assert_eq!(Jaccard.score(view(&a), view(&a)), 1.0);
        let empty: Vec<VertexId> = vec![];
        assert_eq!(Jaccard.score(view(&empty), view(&empty)), 0.0);
        let b = ids(&[9, 10]);
        assert_eq!(Jaccard.score(view(&a), view(&b)), 0.0);
    }

    #[test]
    fn cosine_dice_overlap_agree_on_disjoint_and_equal() {
        let a = ids(&[1, 2]);
        let b = ids(&[3, 4]);
        for s in [&Cosine as &dyn Similarity, &Dice, &Overlap] {
            assert_eq!(s.score(view(&a), view(&b)), 0.0, "{}", s.name());
            assert!(
                (s.score(view(&a), view(&a)) - 1.0).abs() < 1e-6,
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn common_neighbors_counts() {
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[2, 4, 6]);
        assert_eq!(CommonNeighbors.score(view(&a), view(&b)), 2.0);
    }

    #[test]
    fn inverse_degree_uses_true_degree_of_v() {
        let a = ids(&[1]);
        let b = ids(&[1, 2]); // truncated list of 2, true degree 10
        let v = NeighborhoodView::new(&b, 10);
        assert!((InverseDegree.score(view(&a), v) - 0.1).abs() < 1e-6);
        let zero = NeighborhoodView::new(&[], 0);
        assert_eq!(InverseDegree.score(view(&a), zero), 0.0);
    }

    #[test]
    fn unit_is_constant() {
        let a = ids(&[1]);
        let empty: Vec<VertexId> = vec![];
        assert_eq!(Unit.score(view(&a), view(&empty)), 1.0);
    }

    #[test]
    fn content_blend_mixes_structure_and_tags() {
        let nbrs_a = ids(&[1, 2, 3]);
        let nbrs_b = ids(&[2, 3, 4, 5]);
        let tags_a = [10u32, 11, 12];
        let tags_b = [11u32, 12, 13];
        let a = NeighborhoodView::with_tags(&nbrs_a, 3, &tags_a);
        let b = NeighborhoodView::with_tags(&nbrs_b, 4, &tags_b);
        // topo jaccard = 0.4; tag jaccard = 2/4 = 0.5
        let pure_topo = ContentBlend::new(1.0).score(a, b);
        assert!((pure_topo - 0.4).abs() < 1e-6);
        let pure_content = ContentBlend::new(0.0).score(a, b);
        assert!((pure_content - 0.5).abs() < 1e-6);
        let half = ContentBlend::new(0.5).score(a, b);
        assert!((half - 0.45).abs() < 1e-6);
    }

    #[test]
    fn content_blend_without_tags_degrades_to_weighted_topology() {
        let nbrs_a = ids(&[1, 2]);
        let nbrs_b = ids(&[1, 2]);
        let a = view(&nbrs_a);
        let b = view(&nbrs_b);
        assert!((ContentBlend::new(0.7).score(a, b) - 0.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "topology_weight")]
    fn content_blend_rejects_bad_weight() {
        let _ = ContentBlend::new(1.5);
    }

    #[test]
    fn content_blend_rejects_non_finite_weights_at_construction() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = ContentBlend::try_new(bad).unwrap_err();
            assert!(err.contains("finite"), "{err}");
        }
        assert!(ContentBlend::try_new(1.01).unwrap_err().contains("[0, 1]"));
        assert!(ContentBlend::try_new(-0.5).is_err());
        assert_eq!(ContentBlend::try_new(0.5).unwrap().topology_weight, 0.5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not sorted")]
    fn intersection_size_asserts_sorted_inputs() {
        // The two-pointer merge silently undercounts on unsorted input
        // (e.g. [3, 1] ∩ [1, 3] would report 1); debug builds catch the
        // contract violation instead.
        let a = ids(&[3, 1]);
        let b = ids(&[1, 3]);
        let _ = intersection_size(&a, &b);
    }

    #[test]
    fn weighted_blend_sums_weighted_kernels() {
        use std::sync::Arc;
        let a = ids(&[1, 2, 3]);
        let b = ids(&[2, 3, 4]);
        let blend = WeightedBlend::new(vec![
            (Arc::new(Jaccard) as Arc<dyn Similarity>, 0.5),
            (Arc::new(CommonNeighbors) as Arc<dyn Similarity>, 1.0),
        ]);
        assert_eq!(blend.name(), "jaccard*0.5+common-neighbors");
        let want =
            0.5 * Jaccard.score(view(&a), view(&b)) + CommonNeighbors.score(view(&a), view(&b));
        assert!((blend.score(view(&a), view(&b)) - want).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn weighted_blend_rejects_bad_weights() {
        use std::sync::Arc;
        let _ = WeightedBlend::new(vec![(Arc::new(Jaccard) as Arc<dyn Similarity>, f32::NAN)]);
    }

    #[test]
    fn all_metrics_are_nonnegative_and_symmetricish() {
        let a = ids(&[1, 3, 5]);
        let b = ids(&[1, 2, 3, 8]);
        for s in [
            &Jaccard as &dyn Similarity,
            &CommonNeighbors,
            &Cosine,
            &Dice,
            &Overlap,
        ] {
            let ab = s.score(view(&a), view(&b));
            let ba = s.score(view(&b), view(&a));
            assert!(ab >= 0.0);
            assert!((ab - ba).abs() < 1e-6, "{} not symmetric", s.name());
        }
    }
}
