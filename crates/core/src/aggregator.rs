//! Path aggregators (`⊕`, paper §3.2, Table 2).
//!
//! An aggregator merges the path similarities of the (possibly many) 2-hop
//! paths reaching the same candidate `z` into the final `score(u, z)`. To
//! fit the GAS model's map-reduce-style `sum()` phase, the paper decomposes
//! `⊕` into an incremental, commutative and associative `⊕pre` and a
//! normalization `⊕post(σ, n)` applied once with the accumulated value and
//! the number of contributing paths (eq. 10).
//!
//! This implementation adds one further (optional) hook, [`Aggregator::lift`],
//! applied to each path similarity before accumulation, which makes
//! non-linear means like [`Harmonic`] expressible in the same decomposition.

use std::fmt::Debug;

/// A decomposed multiary aggregation operator; see the [module docs](self).
pub trait Aggregator: Send + Sync + Debug {
    /// Stable name for reports ("Sum", "Mean", "Geom", ...).
    fn name(&self) -> &str;

    /// Transformation applied to each path similarity before accumulation.
    /// Defaults to the identity.
    fn lift(&self, s: f32) -> f32 {
        s
    }

    /// Incremental accumulation `⊕pre` (must be commutative/associative).
    fn pre(&self, a: f32, b: f32) -> f32;

    /// Normalization `⊕post(σ, n)` where `n` is the number of accumulated
    /// paths.
    fn post(&self, sigma: f32, n: u32) -> f32;

    /// Convenience: aggregates a full slice (used by tests and the
    /// single-machine reference implementation).
    fn aggregate(&self, values: &[f32]) -> f32 {
        let mut it = values.iter().map(|&v| self.lift(v));
        let Some(first) = it.next() else { return 0.0 };
        let sigma = it.fold(first, |acc, v| self.pre(acc, v));
        self.post(sigma, values.len() as u32)
    }
}

/// `Σ x` — exhaustive accumulation; rewards candidates reached by many
/// paths (paper Table 2, row *Sum*).
#[derive(Copy, Clone, Debug, Default)]
pub struct Sum;

impl Aggregator for Sum {
    fn name(&self) -> &str {
        "Sum"
    }

    fn pre(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn post(&self, sigma: f32, _n: u32) -> f32 {
        sigma
    }
}

/// Arithmetic mean `Σx / n` — averages out path multiplicity (row *Mean*).
#[derive(Copy, Clone, Debug, Default)]
pub struct Mean;

impl Aggregator for Mean {
    fn name(&self) -> &str {
        "Mean"
    }

    fn pre(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn post(&self, sigma: f32, n: u32) -> f32 {
        if n == 0 {
            0.0
        } else {
            sigma / n as f32
        }
    }
}

/// Geometric mean `(Πx)^(1/n)` — strongly penalizes any near-zero path
/// (row *Geom*).
#[derive(Copy, Clone, Debug, Default)]
pub struct GeometricMean;

impl Aggregator for GeometricMean {
    fn name(&self) -> &str {
        "Geom"
    }

    fn pre(&self, a: f32, b: f32) -> f32 {
        a * b
    }

    fn post(&self, sigma: f32, n: u32) -> f32 {
        if n == 0 {
            0.0
        } else {
            sigma.max(0.0).powf(1.0 / n as f32)
        }
    }
}

/// `max x` — scores a candidate by its single best path (an extension
/// beyond the paper's Table 2; see DESIGN.md §8).
#[derive(Copy, Clone, Debug, Default)]
pub struct Max;

impl Aggregator for Max {
    fn name(&self) -> &str {
        "Max"
    }

    fn pre(&self, a: f32, b: f32) -> f32 {
        a.max(b)
    }

    fn post(&self, sigma: f32, _n: u32) -> f32 {
        sigma
    }
}

/// Harmonic mean `n / Σ(1/x)` — dominated by the *weakest* path (an
/// extension beyond the paper's Table 2). Zero path similarities yield a
/// zero score.
#[derive(Copy, Clone, Debug, Default)]
pub struct Harmonic;

/// Reciprocal cap standing in for `1/0` so that zero-similarity paths
/// drive harmonic scores to (numerically) zero without producing infinities
/// in the accumulator.
const HARMONIC_CAP: f32 = 1.0e12;

impl Aggregator for Harmonic {
    fn name(&self) -> &str {
        "Harmonic"
    }

    fn lift(&self, s: f32) -> f32 {
        if s <= 0.0 {
            HARMONIC_CAP
        } else {
            (1.0 / s).min(HARMONIC_CAP)
        }
    }

    fn pre(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn post(&self, sigma: f32, n: u32) -> f32 {
        if sigma <= 0.0 {
            0.0
        } else {
            n as f32 / sigma
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_two_semantics() {
        let xs = [0.5, 0.25, 0.25];
        assert!((Sum.aggregate(&xs) - 1.0).abs() < 1e-6);
        assert!((Mean.aggregate(&xs) - 1.0 / 3.0).abs() < 1e-6);
        let geom = GeometricMean.aggregate(&xs);
        assert!((geom - (0.5f32 * 0.25 * 0.25).powf(1.0 / 3.0)).abs() < 1e-6);
        assert!((Max.aggregate(&xs) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn figure_three_example() {
        // Paper Figure 3, linear combinator α = 0.5:
        // e: paths 0.3, 0.0  f: paths 0.35, 0.25  g: 0.3, 0.2, 0.25
        let e = [0.3, 0.0];
        let f = [0.35, 0.25];
        let g = [0.3, 0.2, 0.25];
        // linearSum ranks g best
        assert!(Sum.aggregate(&g) > Sum.aggregate(&f));
        assert!(Sum.aggregate(&f) > Sum.aggregate(&e));
        assert!((Sum.aggregate(&g) - 0.75).abs() < 1e-6);
        // linearMean ranks f best
        assert!(Mean.aggregate(&f) > Mean.aggregate(&g));
        assert!((Mean.aggregate(&f) - 0.3).abs() < 1e-6);
        // linearGeom zeroes e (one dead path)
        assert_eq!(GeometricMean.aggregate(&e), 0.0);
        assert!(GeometricMean.aggregate(&f) > GeometricMean.aggregate(&g));
    }

    #[test]
    fn harmonic_is_dominated_by_weakest_path() {
        assert!(Harmonic.aggregate(&[0.5, 0.5]) > Harmonic.aggregate(&[0.9, 0.1]));
        assert!(Harmonic.aggregate(&[0.5, 0.0]) < 1e-6);
        assert!((Harmonic.aggregate(&[0.25]) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn empty_input_scores_zero() {
        for a in [
            &Sum as &dyn Aggregator,
            &Mean,
            &GeometricMean,
            &Max,
            &Harmonic,
        ] {
            assert_eq!(a.aggregate(&[]), 0.0, "{}", a.name());
        }
    }

    proptest! {
        /// ⊕pre must be commutative and associative (paper eq. 10).
        #[test]
        fn pre_is_commutative_associative(
            a in 0.0f32..1.0, b in 0.0f32..1.0, c in 0.0f32..1.0
        ) {
            for agg in [
                &Sum as &dyn Aggregator, &Mean, &GeometricMean, &Max, &Harmonic,
            ] {
                prop_assert!((agg.pre(a, b) - agg.pre(b, a)).abs() < 1e-5, "{} commutativity", agg.name());
                let l = agg.pre(agg.pre(a, b), c);
                let r = agg.pre(a, agg.pre(b, c));
                prop_assert!((l - r).abs() < 1e-4, "{} associativity: {l} vs {r}", agg.name());
            }
        }

        /// Singleton aggregation must return the value itself for all the
        /// mean-like operators.
        #[test]
        fn singleton_identity(x in 0.001f32..1.0) {
            for agg in [
                &Sum as &dyn Aggregator, &Mean, &GeometricMean, &Max, &Harmonic,
            ] {
                let got = agg.aggregate(&[x]);
                prop_assert!((got - x).abs() < 1e-4, "{}: {got} vs {x}", agg.name());
            }
        }

        /// Order of accumulation must not change the result.
        #[test]
        fn aggregation_is_order_insensitive(mut xs in proptest::collection::vec(0.01f32..1.0, 1..8)) {
            for agg in [
                &Sum as &dyn Aggregator, &Mean, &GeometricMean, &Max, &Harmonic,
            ] {
                let forward = agg.aggregate(&xs);
                xs.reverse();
                let backward = agg.aggregate(&xs);
                prop_assert!((forward - backward).abs() < 1e-3, "{}", agg.name());
                xs.reverse();
            }
        }
    }
}
