//! Multi-score plans compiled to **fused** single-sweep execution.
//!
//! The paper's experiments sweep many scoring configurations over the same
//! graph, and the supervised re-ranker extracts several score columns per
//! candidate. Run naively, each configuration pays its own three-superstep
//! GAS program — N configurations, N full traversals, even though every
//! one of them gathers the *same* neighborhoods and walks the *same* 2-hop
//! paths.
//!
//! A [`ScorePlan`] removes that redundancy. It holds N declarative
//! [`ScoreSpec`] columns and compiles them into **one** masked superstep
//! sweep: the neighborhood step runs once, the similarity step computes
//! each neighbor pair's [`NeighborhoodView`] once
//! and feeds it to every column's kernel, and the scoring step walks each
//! sampled 2-hop path once, combining and aggregating per column. The
//! result is a [`ScoreMatrix`]: per-vertex top-`k` predictions per column,
//! each column **bit-identical** to running its spec alone as a standalone
//! [`Snaple`] — at roughly one sweep's gather cost instead
//! of N.
//!
//! What must be shared for columns to ride one sweep — and is therefore
//! validated at plan construction: the truncation threshold `thrΓ`, the
//! sampling parameter `klocal`, the sampling policy and its selection
//! similarity (eq. 11's `f`), the scored path length, the seed and the
//! partition strategy ([`PlanConfig`]). Everything else — kernels,
//! combinators, aggregators, `α`, per-column `k`, column weights — varies
//! freely per column.
//!
//! ```
//! use snaple_core::{ExecuteRequest, PrepareRequest, ScorePlan};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//!
//! // Four scores, one traversal:
//! let plan = ScorePlan::parse("linearSum, counter, jaccard@agg=max, cosine*0.7+common@k3")?;
//! let prepared = plan.prepare_plan(&PrepareRequest::new(&graph, &cluster))?;
//! let matrix = prepared.execute_matrix(&ExecuteRequest::new())?;
//! assert_eq!(matrix.num_columns(), 4);
//! for col in 0..matrix.num_columns() {
//!     // Each column is bit-identical to a standalone run of that spec.
//!     let _rows = matrix.column(col);
//! }
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use snaple_gas::size::COLLECTION_OVERHEAD;
use snaple_gas::{
    Deployment, Engine, GasStep, GatherCtx, GatherOverflow, NeighborStates, PartitionStrategy,
    RunBudget, RunStats, ScratchArena, SizeEstimate, WorkTally,
};
use snaple_graph::hash::{edge_unit, hash2};
use snaple_graph::VertexId;

use crate::config::{PathLength, SelectionPolicy, SnapleConfig};
use crate::error::SnapleError;
use crate::predictor::{Prediction, Snaple, StepMasks};
use crate::predictor_api::{
    ExecuteRequest, Predictor, PrepareRequest, PreparedPredictor, SetupStats,
};
use crate::similarity::NeighborhoodView;
use crate::spec::{Registry, ScoreSpec};
use crate::steps::SecondHop;
use crate::topk::{bottom_k_by_score, top_k_by_score};

/// Sweep-wide configuration shared by every column of a [`ScorePlan`].
///
/// Defaults mirror [`SnapleConfig`]'s paper defaults. Spec strings may
/// pin the plan-scoped fields (`@klocal…`, `@thr…`, `@depth…`, `@sel…`);
/// [`ScorePlan::with_config`] merges those requests into the plan's
/// config and rejects conflicts between columns.
#[derive(Clone, Debug)]
pub struct PlanConfig {
    /// Default predictions per vertex for columns without `@k`.
    pub k: usize,
    /// Sampling parameter `klocal`; `None` disables sampling.
    pub klocal: Option<usize>,
    /// Truncation threshold `thrΓ`; `None` disables truncation.
    pub thr_gamma: Option<usize>,
    /// Neighbor-sampling policy of the shared similarity step.
    pub selection: SelectionPolicy,
    /// Seed driving every randomized decision of the sweep.
    pub seed: u64,
    /// Edge-placement strategy of the underlying engine.
    pub partition: PartitionStrategy,
    /// How many hops the scored paths span.
    pub path_length: PathLength,
}

impl Default for PlanConfig {
    fn default() -> Self {
        let base = SnapleConfig::new(crate::config::NamedScore::LinearSum);
        PlanConfig {
            k: base.k,
            klocal: base.klocal,
            thr_gamma: base.thr_gamma,
            selection: base.selection,
            seed: base.seed,
            partition: base.partition,
            path_length: base.path_length,
        }
    }
}

impl PlanConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        PlanConfig::default()
    }

    /// Sets the default per-column number of predictions.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the sampling parameter (`None` = no sampling).
    pub fn klocal(mut self, klocal: Option<usize>) -> Self {
        self.klocal = klocal;
        self
    }

    /// Sets the truncation threshold (`None` = no truncation).
    pub fn thr_gamma(mut self, thr: Option<usize>) -> Self {
        self.thr_gamma = thr;
        self
    }

    /// Sets the neighbor-sampling policy.
    pub fn selection(mut self, policy: SelectionPolicy) -> Self {
        self.selection = policy;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the partition strategy.
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = strategy;
        self
    }

    /// Sets the scored path length.
    pub fn path_length(mut self, length: PathLength) -> Self {
        self.path_length = length;
        self
    }
}

/// A declarative multi-score plan compiled to one fused sweep.
///
/// See the [module docs](self) for the execution model and an example.
#[derive(Clone, Debug)]
pub struct ScorePlan {
    specs: Vec<ScoreSpec>,
    config: PlanConfig,
    /// Resolved per-column `k` (spec override or plan default).
    ks: Vec<usize>,
}

impl ScorePlan {
    /// Builds a plan over `specs` with the default [`PlanConfig`].
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] for empty plans, invalid per-column
    /// parameters, or columns whose plan-scoped requests
    /// (`klocal`/`thr`/`depth`/`sel`, selection similarity) conflict.
    pub fn new(specs: Vec<ScoreSpec>) -> Result<Self, SnapleError> {
        ScorePlan::with_config(specs, PlanConfig::default())
    }

    /// Builds a plan over `specs`, merging their plan-scoped requests
    /// into `config`.
    ///
    /// # Errors
    ///
    /// As [`ScorePlan::new`].
    pub fn with_config(specs: Vec<ScoreSpec>, mut config: PlanConfig) -> Result<Self, SnapleError> {
        if specs.is_empty() {
            return Err(SnapleError::InvalidConfig(
                "a score plan needs at least one spec".to_owned(),
            ));
        }
        for spec in &specs {
            spec.validate()?;
        }

        // Merge plan-scoped spec requests; columns must agree because the
        // whole plan shares one neighborhood/similarity sweep.
        fn merge<T: PartialEq + Copy + std::fmt::Debug>(
            what: &str,
            specs: &[ScoreSpec],
            select: impl Fn(&ScoreSpec) -> Option<T>,
            slot: &mut T,
        ) -> Result<(), SnapleError> {
            let mut pinned: Option<(usize, T)> = None;
            for (col, spec) in specs.iter().enumerate() {
                let Some(value) = select(spec) else { continue };
                match pinned {
                    None => pinned = Some((col, value)),
                    Some((first, prev)) if prev != value => {
                        return Err(SnapleError::InvalidConfig(format!(
                            "plan columns disagree on {what}: column {first} \
                             ({:?}) pins {prev:?} but column {col} ({:?}) pins \
                             {value:?}; {what} is shared by the fused sweep",
                            specs[first].label(),
                            spec.label(),
                        )))
                    }
                    Some(_) => {}
                }
            }
            if let Some((_, value)) = pinned {
                *slot = value;
            }
            Ok(())
        }
        merge(
            "klocal",
            &specs,
            |s| s.shared_params().klocal,
            &mut config.klocal,
        )?;
        merge(
            "thrΓ",
            &specs,
            |s| s.shared_params().thr_gamma,
            &mut config.thr_gamma,
        )?;
        merge(
            "depth",
            &specs,
            |s| s.shared_params().depth,
            &mut config.path_length,
        )?;
        merge(
            "selection policy",
            &specs,
            |s| s.shared_params().selection,
            &mut config.selection,
        )?;

        let selection_name = specs[0].components().selection_similarity.name().to_owned();
        for (col, spec) in specs.iter().enumerate().skip(1) {
            let name = spec.components().selection_similarity.name();
            if name != selection_name {
                return Err(SnapleError::InvalidConfig(format!(
                    "plan columns disagree on the selection similarity: column 0 \
                     ranks sampled neighbors by {selection_name:?} but column {col} \
                     ({:?}) by {name:?}; eq. 11's `f` is shared by the fused sweep",
                    spec.label(),
                )));
            }
        }

        if config.k == 0 {
            return Err(SnapleError::InvalidConfig(
                "plan k must be at least 1".to_owned(),
            ));
        }
        if config.klocal == Some(0) {
            return Err(SnapleError::InvalidConfig(
                "plan klocal must be at least 1 (use None to disable sampling)".to_owned(),
            ));
        }
        let ks = specs
            .iter()
            .map(|s| s.k_override().unwrap_or(config.k))
            .collect();
        Ok(ScorePlan { specs, config, ks })
    }

    /// Parses a comma-separated plan string (`"linearSum, jaccard@k16"`)
    /// against the built-in [`Registry`].
    ///
    /// # Errors
    ///
    /// As [`ScorePlan::new`], plus parse errors from
    /// [`ScoreSpec::parse`].
    pub fn parse(s: &str) -> Result<Self, SnapleError> {
        ScorePlan::parse_with(&Registry::builtin(), s, PlanConfig::default())
    }

    /// Parses a comma-separated plan string with an explicit registry and
    /// base configuration.
    ///
    /// # Errors
    ///
    /// As [`ScorePlan::parse`].
    pub fn parse_with(
        registry: &Registry,
        s: &str,
        config: PlanConfig,
    ) -> Result<Self, SnapleError> {
        let specs = s
            .split(',')
            .map(|token| ScoreSpec::parse_with(registry, token))
            .collect::<Result<Vec<_>, _>>()?;
        ScorePlan::with_config(specs, config)
    }

    /// The plan's columns.
    pub fn specs(&self) -> &[ScoreSpec] {
        &self.specs
    }

    /// The merged sweep configuration.
    pub fn config(&self) -> &PlanConfig {
        &self.config
    }

    /// Number of score columns.
    pub fn num_columns(&self) -> usize {
        self.specs.len()
    }

    /// Column labels, in column order.
    pub fn labels(&self) -> Vec<String> {
        self.specs.iter().map(|s| s.label().to_owned()).collect()
    }

    /// Resolved per-column `k`.
    pub fn column_k(&self, col: usize) -> usize {
        self.ks[col]
    }

    /// The [`SnapleConfig`] a *standalone* run of column `col` would use —
    /// the fused column is bit-identical to executing
    /// [`ScorePlan::column_snaple`] with this configuration.
    pub fn snaple_config(&self, col: usize) -> SnapleConfig {
        SnapleConfig::new(crate::config::NamedScore::LinearSum)
            .k(self.ks[col])
            .klocal(self.config.klocal)
            .thr_gamma(self.config.thr_gamma)
            .alpha(self.specs[col].alpha())
            .selection(self.config.selection)
            .seed(self.config.seed)
            .partition(self.config.partition)
            .path_length(self.config.path_length)
    }

    /// A standalone [`Snaple`] predictor equivalent to column `col` — the
    /// 1-spec special case the fused sweep generalizes.
    pub fn column_snaple(&self, col: usize) -> Snaple {
        Snaple::with_components(
            self.snaple_config(col),
            self.specs[col].components().clone(),
        )
    }

    /// The 1-spec plan a [`Snaple`] predictor executes as.
    pub(crate) fn from_snaple(snaple: &Snaple) -> Result<ScorePlan, SnapleError> {
        let config = snaple.config();
        let spec = ScoreSpec::from_components(
            snaple.components().name.clone(),
            snaple.components().clone(),
        )
        .k(config.k);
        ScorePlan::with_config(
            vec![spec],
            PlanConfig {
                k: config.k,
                klocal: config.klocal,
                thr_gamma: config.thr_gamma,
                selection: config.selection,
                seed: config.seed,
                partition: config.partition,
                path_length: config.path_length,
            },
        )
    }

    /// The `k` of the plan's [combined](ScoreMatrix::combined) ranking:
    /// the largest per-column `k`.
    pub fn combined_k(&self) -> usize {
        self.ks.iter().copied().max().unwrap_or(1)
    }

    /// Builds the plan's deployment once, returning a concrete
    /// [`PreparedPlan`] whose [`execute_matrix`](PreparedPlan::execute_matrix)
    /// answers requests with full [`ScoreMatrix`] results (the trait-level
    /// [`Predictor::prepare`] boxes the same value).
    ///
    /// # Errors
    ///
    /// [`SnapleError::Engine`] for unusable cluster shapes.
    pub fn prepare_plan<'a>(
        &self,
        req: &PrepareRequest<'a>,
    ) -> Result<PreparedPlan<'a>, SnapleError> {
        let started = Instant::now();
        let deployment = Deployment::new(
            req.graph(),
            req.cluster().clone(),
            self.config.partition,
            self.config.seed,
        )?;
        let setup = SetupStats {
            prepare_wall_seconds: started.elapsed().as_secs_f64(),
            partition_build_seconds: deployment.partition_build_seconds(),
            replication_factor: deployment.replication_factor(),
        };
        Ok(PreparedPlan {
            plan: self.clone(),
            deployment,
            setup,
        })
    }

    /// Runs the fused sweep on a prepared [`Deployment`], evaluating
    /// every column in one pass.
    ///
    /// With [`ExecuteRequest::queries`] the sweep runs under the same
    /// shrinking active-vertex masks as a targeted [`Snaple`] run; each
    /// queried row of each column is bit-identical to the standalone
    /// all-vertices run of that column, non-queried rows are empty.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] for malformed requests,
    /// [`SnapleError::Engine`] when the simulated cluster cannot execute
    /// the sweep.
    pub fn execute_on(
        &self,
        deployment: &Deployment<'_>,
        req: &ExecuteRequest<'_>,
    ) -> Result<ScoreMatrix, SnapleError> {
        let graph = deployment.graph();
        req.validate_for(graph)?;
        let ncols = self.specs.len();
        let mut engine = Engine::on(deployment).with_seed(req.seed().unwrap_or(self.config.seed));
        let mut state = vec![PlanVertex::default(); graph.num_vertices()];
        if let Some(attrs) = req.attributes() {
            for (vertex, tags) in state.iter_mut().zip(attrs) {
                let mut tags = tags.clone();
                tags.sort_unstable();
                tags.dedup();
                vertex.tags = tags;
            }
        }
        let masks = req
            .query_mask(graph)
            .map(|q| StepMasks::build(graph, &q, self.config.path_length));
        let col_ops: Vec<AtomicU64> = (0..ncols).map(|_| AtomicU64::new(0)).collect();

        engine.run_step_masked(
            &PlanNeighborhoodStep {
                thr_gamma: self.config.thr_gamma,
            },
            &mut state,
            masks.as_ref().map(|m| &m.neighborhood),
        )?;
        engine.run_step_masked(
            &PlanSimilarityStep {
                columns: &self.specs,
                klocal: self.config.klocal,
                selection: self.config.selection,
                col_ops: &col_ops,
            },
            &mut state,
            masks.as_ref().map(|m| &m.similarity),
        )?;
        if self.config.path_length == PathLength::Three {
            // The recursive longer-path extension, fused: compute each
            // column's 2-hop scores, promote them into per-column path
            // tables, then combine once more (see `steps::PromoteScoresStep`).
            let keeps: Vec<usize> = self
                .ks
                .iter()
                .map(|&k| self.config.klocal.unwrap_or(k.max(20)))
                .collect();
            let promote_mask = masks.as_ref().and_then(|m| m.promote.as_ref());
            engine.run_step_masked(
                &PlanScoreStep {
                    columns: &self.specs,
                    ks: &keeps,
                    second_hop: SecondHop::Sims,
                    col_ops: &col_ops,
                },
                &mut state,
                promote_mask,
            )?;
            engine.run_step_masked(&PlanPromoteStep { keeps: &keeps }, &mut state, promote_mask)?;
        }
        let second_hop = match self.config.path_length {
            PathLength::Two => SecondHop::Sims,
            PathLength::Three => SecondHop::Paths,
        };
        engine.run_step_masked(
            &PlanScoreStep {
                columns: &self.specs,
                ks: &self.ks,
                second_hop,
                col_ops: &col_ops,
            },
            &mut state,
            masks.as_ref().map(|m| &m.score),
        )?;

        let mut columns: Vec<Vec<Vec<(VertexId, f32)>>> = (0..ncols)
            .map(|_| Vec::with_capacity(state.len()))
            .collect();
        for vertex in state {
            let mut predictions = vertex.predictions;
            predictions.resize(ncols, Vec::new());
            for (col, rows) in predictions.into_iter().enumerate() {
                columns[col].push(rows);
            }
        }
        Ok(ScoreMatrix {
            labels: self.labels(),
            weights: self.specs.iter().map(ScoreSpec::column_weight).collect(),
            columns,
            column_ops: col_ops.into_iter().map(AtomicU64::into_inner).collect(),
            stats: engine.into_stats(),
        })
    }
}

/// A [`ScorePlan`] with its deployment built: the execute-many half of
/// plan serving. [`PreparedPlan::execute_matrix`] returns full
/// [`ScoreMatrix`] results; the [`PreparedPredictor`] impl answers with
/// the plan's [combined](ScoreMatrix::combined) ranking.
///
/// Owns its plan (specs are `Arc`-shared, so the clone is cheap), which
/// lets [`PreparedPredictor::fork_with_delta`] detach fully owned epoch
/// snapshots for concurrent serving.
pub struct PreparedPlan<'a> {
    plan: ScorePlan,
    deployment: Deployment<'a>,
    setup: SetupStats,
}

impl<'a> PreparedPlan<'a> {
    /// The shared deployment the plan executes on.
    pub fn deployment(&self) -> &Deployment<'a> {
        &self.deployment
    }

    /// Answers one request with all columns.
    ///
    /// # Errors
    ///
    /// As [`ScorePlan::execute_on`].
    pub fn execute_matrix(&self, req: &ExecuteRequest<'_>) -> Result<ScoreMatrix, SnapleError> {
        self.plan.execute_on(&self.deployment, req)
    }

    /// Ingests a graph delta into the prepared deployment in place (see
    /// [`PreparedPredictor::apply_delta`]); subsequent fused sweeps run on
    /// the mutated graph, bit-identical to a cold rebuild.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError::Engine`] from the deployment refresh.
    pub fn apply_delta(
        &mut self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<snaple_gas::DeltaStats, SnapleError> {
        Ok(self.deployment.apply_delta(delta)?)
    }

    /// The setup costs paid at prepare time.
    pub fn setup(&self) -> &SetupStats {
        &self.setup
    }
}

impl PreparedPredictor for PreparedPlan<'_> {
    fn execute(&self, req: &ExecuteRequest<'_>) -> Result<Prediction, SnapleError> {
        Ok(self.execute_matrix(req)?.combined(self.plan.combined_k()))
    }

    fn apply_delta(
        &mut self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<snaple_gas::DeltaStats, SnapleError> {
        PreparedPlan::apply_delta(self, delta)
    }

    fn fork_with_delta(
        &self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<(Box<dyn PreparedPredictor>, snaple_gas::DeltaStats), SnapleError> {
        let mut deployment = self.deployment.detach();
        let applied = deployment.apply_delta(delta)?;
        let fork = PreparedPlan {
            plan: self.plan.clone(),
            deployment,
            setup: self.setup.clone(),
        };
        Ok((Box::new(fork), applied))
    }

    fn setup(&self) -> &SetupStats {
        &self.setup
    }
}

impl Predictor for ScorePlan {
    /// Prepares the plan's shared deployment; the boxed predictor's
    /// `execute` answers with the plan's weighted
    /// [combined](ScoreMatrix::combined) ranking. Use
    /// [`ScorePlan::prepare_plan`] to keep the concrete [`PreparedPlan`]
    /// and read full matrices.
    ///
    /// # Errors
    ///
    /// As [`ScorePlan::prepare_plan`].
    fn prepare<'a>(
        &'a self,
        req: &PrepareRequest<'a>,
    ) -> Result<Box<dyn PreparedPredictor + 'a>, SnapleError> {
        Ok(Box::new(self.prepare_plan(req)?))
    }
}

/// The result of a fused [`ScorePlan`] sweep: per-vertex top-`k`
/// predictions per column, the shared run's [`RunStats`], and per-column
/// work attribution.
#[derive(Clone, Debug)]
pub struct ScoreMatrix {
    labels: Vec<String>,
    weights: Vec<f32>,
    columns: Vec<Vec<Vec<(VertexId, f32)>>>,
    column_ops: Vec<u64>,
    /// Statistics of the shared sweep (one run covering every column).
    pub stats: RunStats,
}

impl ScoreMatrix {
    /// Number of score columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of vertices rows were computed for.
    pub fn num_vertices(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Column labels, in column order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Predicted `(target, score)` pairs of column `col` for vertex `u`,
    /// best first.
    pub fn scores(&self, col: usize, u: VertexId) -> &[(VertexId, f32)] {
        &self.columns[col][u.index()]
    }

    /// Iterates `(source, predictions)` rows of column `col`.
    pub fn column_rows(
        &self,
        col: usize,
    ) -> impl Iterator<Item = (VertexId, &[(VertexId, f32)])> + '_ {
        self.columns[col]
            .iter()
            .enumerate()
            .map(|(i, rows)| (VertexId::new(i as u32), rows.as_slice()))
    }

    /// Column `col` as a standalone [`Prediction`] (rows cloned, stats
    /// shared-by-copy).
    pub fn column(&self, col: usize) -> Prediction {
        Prediction::from_parts(self.columns[col].clone(), self.stats.clone())
    }

    /// Consumes the matrix, returning column `col` as a [`Prediction`]
    /// without cloning its rows.
    pub fn into_column(mut self, col: usize) -> Prediction {
        Prediction::from_parts(std::mem::take(&mut self.columns[col]), self.stats)
    }

    /// Work units attributed to column `col` alone: its kernel
    /// evaluations beyond the shared selection similarity plus its path
    /// combination and merge work. The difference between
    /// [`RunStats::total_work_ops`] and the summed attributions is the
    /// *shared* sweep work every additional column rides for free.
    pub fn column_work_ops(&self, col: usize) -> u64 {
        self.column_ops[col]
    }

    /// Iterates `(label, attributed work ops)` per column.
    pub fn column_attribution(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.labels
            .iter()
            .map(String::as_str)
            .zip(self.column_ops.iter().copied())
    }

    /// The plan's weighted ensemble ranking: per vertex, every candidate
    /// proposed by any column scores `Σ weight_c · score_c` (absent
    /// columns contribute zero) and the top-`k` survive.
    ///
    /// For a 1-column plan with weight 1 this is exactly the column.
    pub fn combined(&self, k: usize) -> Prediction {
        let n = self.num_vertices();
        let mut rows: Vec<Vec<(VertexId, f32)>> = Vec::with_capacity(n);
        for u in 0..n {
            let mut pooled: Vec<(VertexId, f32)> = Vec::new();
            for (col, weight) in self.weights.iter().enumerate() {
                for &(z, score) in &self.columns[col][u] {
                    match pooled.binary_search_by_key(&z, |&(id, _)| id) {
                        Ok(i) => pooled[i].1 += weight * score,
                        Err(i) => pooled.insert(i, (z, weight * score)),
                    }
                }
            }
            rows.push(top_k_by_score(pooled, k));
        }
        Prediction::from_parts(rows, self.stats.clone())
    }
}

// --------------------------------------------------------------------------
// Fused vertex state and steps.
// --------------------------------------------------------------------------

/// Per-vertex state of a fused plan sweep: one shared neighborhood plus
/// per-column similarity/score tables in column-major stripes.
#[derive(Clone, Debug, Default, PartialEq)]
struct PlanVertex {
    /// Truncated neighborhood `Γ̂(u)`, sorted by vertex id (shared).
    gamma: Vec<VertexId>,
    /// Sorted content tags (shared).
    tags: Vec<u32>,
    /// True out-degree `|Γ(u)|`.
    out_degree: u32,
    /// Kept sampled neighbors, sorted by vertex id (shared across
    /// columns — the plan validates that sampling parameters agree).
    sim_ids: Vec<VertexId>,
    /// Per-neighbor, per-column raw similarities:
    /// `sim_vals[n·ncols + c]` is neighbor `n`'s similarity in column `c`.
    sim_vals: Vec<f32>,
    /// Per-column promoted multi-hop path tables (3-hop runs only).
    paths: Vec<Vec<(VertexId, f32)>>,
    /// Per-column top-`k` predictions, best first.
    predictions: Vec<Vec<(VertexId, f32)>>,
}

impl PlanVertex {
    /// Index of sampled neighbor `v` in `sim_ids`, if kept.
    #[inline]
    fn sim_index(&self, v: VertexId) -> Option<usize> {
        self.sim_ids.binary_search(&v).ok()
    }

    /// Whether `v` is in the truncated neighborhood `Γ̂(u)`.
    #[inline]
    fn in_gamma(&self, v: VertexId) -> bool {
        self.gamma.binary_search(&v).is_ok()
    }
}

impl SizeEstimate for PlanVertex {
    fn estimated_bytes(&self) -> u64 {
        let nested: u64 = self
            .paths
            .iter()
            .chain(self.predictions.iter())
            .map(|t| COLLECTION_OVERHEAD + t.len() as u64 * 8)
            .sum();
        6 * COLLECTION_OVERHEAD
            + 4
            + self.gamma.len() as u64 * 4
            + self.tags.len() as u64 * 4
            + self.sim_ids.len() as u64 * 4
            + self.sim_vals.len() as u64 * 4
            + nested
    }
}

/// Fused step 1: identical to [`steps::NeighborhoodStep`]
/// (crate::steps::NeighborhoodStep) — collect `Γ̂` once for all columns.
#[derive(Clone, Debug)]
struct PlanNeighborhoodStep {
    thr_gamma: Option<usize>,
}

impl GasStep for PlanNeighborhoodStep {
    type Vertex = PlanVertex;
    type Gather = Vec<VertexId>;

    fn name(&self) -> &str {
        "plan-1-neighborhood"
    }

    fn gather(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        _u_data: &PlanVertex,
        v: VertexId,
        _v_data: &PlanVertex,
        _work: &mut WorkTally,
    ) -> Option<Vec<VertexId>> {
        if let Some(thr) = self.thr_gamma {
            let degree = ctx.out_degree(u);
            if degree > thr {
                let keep_probability = thr as f64 / degree as f64;
                if edge_unit(ctx.seed(), u.as_u32(), v.as_u32()) > keep_probability {
                    return None;
                }
            }
        }
        Some(vec![v])
    }

    fn sum(&self, mut a: Vec<VertexId>, b: Vec<VertexId>, work: &mut WorkTally) -> Vec<VertexId> {
        work.add(b.len() as u64);
        a.extend(b);
        a
    }

    #[allow(clippy::too_many_arguments)]
    fn gather_run(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        _u_data: &PlanVertex,
        neighbors: &[VertexId],
        _states: &NeighborStates<'_, PlanVertex>,
        budget: &mut RunBudget<'_>,
        _scratch: &mut ScratchArena,
        work: &mut WorkTally,
    ) -> Result<Option<(Vec<VertexId>, u64)>, GatherOverflow> {
        // The per-pair path charges one single-neighbor `Vec` per kept
        // edge; the batched path charges the same bytes but collects the
        // kept neighbors into one buffer instead of folding N allocations.
        let pair_bytes = COLLECTION_OVERHEAD + 4;
        let keep_probability = self.thr_gamma.and_then(|thr| {
            let degree = ctx.out_degree(u);
            (degree > thr).then(|| thr as f64 / degree as f64)
        });
        let mut kept: Vec<VertexId> = Vec::new();
        let mut bytes = 0u64;
        for &v in neighbors {
            budget.count_gather();
            work.add(1);
            if let Some(p) = keep_probability {
                if edge_unit(ctx.seed(), u.as_u32(), v.as_u32()) > p {
                    continue;
                }
            }
            budget.charge(pair_bytes)?;
            if !kept.is_empty() {
                budget.count_sum();
                work.add(2);
            }
            kept.push(v);
            bytes += pair_bytes;
        }
        Ok(if kept.is_empty() {
            None
        } else {
            Some((kept, bytes))
        })
    }

    fn apply(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        data: &mut PlanVertex,
        acc: Option<Vec<VertexId>>,
        work: &mut WorkTally,
    ) {
        let mut gamma = acc.unwrap_or_default();
        gamma.sort_unstable();
        gamma.dedup();
        work.add(gamma.len() as u64);
        data.gamma = gamma;
        data.out_degree = ctx.out_degree(u) as u32;
    }
}

/// Accumulator of the fused similarity step: candidate neighbors with
/// their shared selection similarity and per-column scoring similarities
/// (column-major stripes, `vals[n·ncols + c]`).
#[derive(Clone, Debug, Default)]
struct SimGather {
    ids: Vec<VertexId>,
    sels: Vec<f32>,
    vals: Vec<f32>,
}

impl SimGather {
    /// Accounted bytes of a single-pair accumulator with `ncols` columns —
    /// kept in sync with the [`SizeEstimate`] impl below so the batched
    /// gather charges exactly what the per-pair path charges per edge.
    fn pair_bytes(ncols: usize) -> u64 {
        3 * COLLECTION_OVERHEAD + 4 + 4 + ncols as u64 * 4
    }
}

impl SizeEstimate for SimGather {
    fn estimated_bytes(&self) -> u64 {
        3 * COLLECTION_OVERHEAD
            + self.ids.len() as u64 * 4
            + self.sels.len() as u64 * 4
            + self.vals.len() as u64 * 4
    }
}

/// Fused step 2: compute each neighbor pair's [`NeighborhoodView`] once,
/// feed every column's kernel, and keep one shared `klocal` sample.
#[derive(Debug)]
struct PlanSimilarityStep<'p> {
    columns: &'p [ScoreSpec],
    klocal: Option<usize>,
    selection: SelectionPolicy,
    col_ops: &'p [AtomicU64],
}

impl GasStep for PlanSimilarityStep<'_> {
    type Vertex = PlanVertex;
    type Gather = SimGather;

    fn name(&self) -> &str {
        "plan-2-similarity"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        u_data: &PlanVertex,
        v: VertexId,
        v_data: &PlanVertex,
        work: &mut WorkTally,
    ) -> Option<SimGather> {
        let merge_cost = (u_data.gamma.len() + v_data.gamma.len()) as u64;
        // One linear set-intersection for the shared selection similarity.
        work.add(merge_cost);
        let u_view =
            NeighborhoodView::with_tags(&u_data.gamma, u_data.out_degree as usize, &u_data.tags);
        let v_view =
            NeighborhoodView::with_tags(&v_data.gamma, v_data.out_degree as usize, &v_data.tags);
        let selection = &self.columns[0].components().selection_similarity;
        let selection_ptr = std::sync::Arc::as_ptr(selection) as *const u8;
        let sel = selection.score(u_view, v_view);
        let mut vals = Vec::with_capacity(self.columns.len());
        for (col, spec) in self.columns.iter().enumerate() {
            let components = spec.components();
            // The fusion win: a kernel that IS the shared selection
            // similarity (same Arc — identity, never name, so a custom
            // kernel with a colliding name() is still evaluated) costs
            // nothing extra; different kernels re-read the (already
            // materialized) views.
            let is_selection = std::ptr::eq(
                std::sync::Arc::as_ptr(&components.similarity) as *const u8,
                selection_ptr,
            );
            let score = if is_selection {
                sel
            } else {
                work.add(merge_cost);
                self.col_ops[col].fetch_add(merge_cost, Ordering::Relaxed);
                components.similarity.score(u_view, v_view)
            };
            vals.push(score);
        }
        Some(SimGather {
            ids: vec![v],
            sels: vec![sel],
            vals,
        })
    }

    fn sum(&self, mut a: SimGather, b: SimGather, work: &mut WorkTally) -> SimGather {
        work.add(b.ids.len() as u64);
        a.ids.extend(b.ids);
        a.sels.extend(b.sels);
        a.vals.extend(b.vals);
        a
    }

    /// Batched stripe execution of the fused similarity step: build every
    /// pair's [`NeighborhoodView`] once for the whole run, feed each
    /// kernel a contiguous stripe of views via
    /// [`Similarity::score_stripe`](crate::similarity::Similarity::score_stripe),
    /// and assemble one accumulator per run instead of folding N
    /// single-pair allocations. Scores, accounting, and memory charges are
    /// bit-identical to the per-pair [`gather`](GasStep::gather) path.
    #[allow(clippy::too_many_arguments)]
    fn gather_run(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        u_data: &PlanVertex,
        neighbors: &[VertexId],
        states: &NeighborStates<'_, PlanVertex>,
        budget: &mut RunBudget<'_>,
        scratch: &mut ScratchArena,
        work: &mut WorkTally,
    ) -> Result<Option<(SimGather, u64)>, GatherOverflow> {
        let n = neighbors.len();
        if n == 0 {
            return Ok(None);
        }
        let ncols = self.columns.len();
        let pair_bytes = SimGather::pair_bytes(ncols);
        let u_view =
            NeighborhoodView::with_tags(&u_data.gamma, u_data.out_degree as usize, &u_data.tags);
        let views: Vec<NeighborhoodView<'_>> = neighbors
            .iter()
            .map(|&v| {
                let vd = states.get(v);
                NeighborhoodView::with_tags(&vd.gamma, vd.out_degree as usize, &vd.tags)
            })
            .collect();
        // Replay the per-pair accounting protocol in edge order: one
        // engine op plus one selection merge per pair, one byte charge per
        // pair, and the engine+program fold ops for every pair after the
        // first — so a memory overflow fires at the same pair with the
        // same required bytes.
        let mut total_merge = 0u64;
        for (i, view) in views.iter().enumerate() {
            budget.count_gather();
            work.add(1);
            let merge_cost = (u_data.gamma.len() + view.neighbors.len()) as u64;
            total_merge += merge_cost;
            work.add(merge_cost);
            budget.charge(pair_bytes)?;
            if i > 0 {
                budget.count_sum();
                work.add(2);
            }
        }
        let selection = &self.columns[0].components().selection_similarity;
        let selection_ptr = std::sync::Arc::as_ptr(selection) as *const u8;
        let mut sels = vec![0f32; n];
        selection.score_stripe(u_view, &views, &mut sels);
        let mut vals = vec![0f32; n * ncols];
        let mut col_stripe = scratch.lease_f32(n);
        for (col, spec) in self.columns.iter().enumerate() {
            let components = spec.components();
            let is_selection = std::ptr::eq(
                std::sync::Arc::as_ptr(&components.similarity) as *const u8,
                selection_ptr,
            );
            if is_selection {
                for (slot, &s) in vals.iter_mut().skip(col).step_by(ncols).zip(&sels) {
                    *slot = s;
                }
            } else {
                work.add(total_merge);
                self.col_ops[col].fetch_add(total_merge, Ordering::Relaxed);
                components
                    .similarity
                    .score_stripe(u_view, &views, &mut col_stripe);
                for (slot, &s) in vals.iter_mut().skip(col).step_by(ncols).zip(&col_stripe) {
                    *slot = s;
                }
            }
        }
        scratch.release_f32(col_stripe);
        Ok(Some((
            SimGather {
                ids: neighbors.to_vec(),
                sels,
                vals,
            },
            pair_bytes * n as u64,
        )))
    }

    fn apply(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        data: &mut PlanVertex,
        acc: Option<SimGather>,
        work: &mut WorkTally,
    ) {
        let ncols = self.columns.len();
        let candidates = acc.unwrap_or_default();
        work.add(candidates.ids.len() as u64);
        // Rank by the shared selection similarity — the same ranking every
        // standalone run of any column would produce.
        let ranked: Vec<(VertexId, f32)> = candidates
            .ids
            .iter()
            .copied()
            .zip(candidates.sels.iter().copied())
            .collect();
        let kept_ids: Vec<VertexId> = match self.klocal {
            None => ranked.into_iter().map(|(v, _)| v).collect(),
            Some(klocal) => match self.selection {
                SelectionPolicy::Max => top_k_by_score(ranked, klocal)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect(),
                SelectionPolicy::Min => bottom_k_by_score(ranked, klocal)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect(),
                SelectionPolicy::Random => {
                    let mut hashed: Vec<(u64, VertexId)> = ranked
                        .into_iter()
                        .map(|(v, _)| (hash2(ctx.seed(), u.as_u32() as u64, v.as_u32() as u64), v))
                        .collect();
                    hashed.sort_unstable();
                    hashed.truncate(klocal);
                    hashed.into_iter().map(|(_, v)| v).collect()
                }
            },
        };
        let mut kept_ids = kept_ids;
        kept_ids.sort_unstable();
        let mut kept: Vec<(VertexId, usize)> = candidates
            .ids
            .iter()
            .enumerate()
            .filter(|(_, v)| kept_ids.binary_search(v).is_ok())
            .map(|(i, &v)| (v, i))
            .collect();
        kept.sort_unstable_by_key(|&(v, _)| v);
        kept.dedup_by_key(|&mut (v, _)| v);
        data.sim_ids = kept.iter().map(|&(v, _)| v).collect();
        let mut vals = Vec::with_capacity(kept.len() * ncols);
        for &(_, i) in &kept {
            vals.extend_from_slice(&candidates.vals[i * ncols..(i + 1) * ncols]);
        }
        data.sim_vals = vals;
    }
}

/// Accumulator of the fused score step: per column, the sorted
/// `(candidate, ⊕pre-accumulated lifted path similarity, path count)`
/// triples of [`steps::ScoreStep`](crate::steps::ScoreStep).
#[derive(Clone, Debug, Default)]
struct ScoreGather {
    cols: Vec<Vec<(VertexId, f32, u32)>>,
}

impl SizeEstimate for ScoreGather {
    fn estimated_bytes(&self) -> u64 {
        COLLECTION_OVERHEAD
            + self
                .cols
                .iter()
                .map(|c| COLLECTION_OVERHEAD + c.len() as u64 * 12)
                .sum::<u64>()
    }
}

/// Fused step 3: walk each sampled 2-hop path once, combining and
/// aggregating per column.
#[derive(Debug)]
struct PlanScoreStep<'p> {
    columns: &'p [ScoreSpec],
    ks: &'p [usize],
    second_hop: SecondHop,
    col_ops: &'p [AtomicU64],
}

impl GasStep for PlanScoreStep<'_> {
    type Vertex = PlanVertex;
    type Gather = ScoreGather;

    fn name(&self) -> &str {
        "plan-3-score"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        u: VertexId,
        u_data: &PlanVertex,
        v: VertexId,
        v_data: &PlanVertex,
        work: &mut WorkTally,
    ) -> Option<ScoreGather> {
        let ncols = self.columns.len();
        let uv = u_data.sim_index(v)?;
        let sims_uv = &u_data.sim_vals[uv * ncols..(uv + 1) * ncols];
        let mut cols: Vec<Vec<(VertexId, f32, u32)>> = vec![Vec::new(); ncols];
        match self.second_hop {
            SecondHop::Sims => {
                // One scan of the shared second-hop table serves every
                // column; only the per-path combine is per-column work.
                work.add(v_data.sim_ids.len() as u64);
                let mut combines = 0u64;
                for (second, &z) in v_data.sim_ids.iter().enumerate() {
                    if z == u || u_data.in_gamma(z) {
                        continue;
                    }
                    combines += 1;
                    let sims_vz = &v_data.sim_vals[second * ncols..(second + 1) * ncols];
                    for (col, spec) in self.columns.iter().enumerate() {
                        let components = spec.components();
                        let path = components.combinator.combine(sims_uv[col], sims_vz[col]);
                        cols[col].push((z, components.aggregator.lift(path), 1));
                    }
                }
                if combines > 0 {
                    work.add(combines * ncols as u64);
                    for ops in self.col_ops {
                        ops.fetch_add(combines, Ordering::Relaxed);
                    }
                }
            }
            SecondHop::Paths => {
                // Promoted path tables are per column (each column kept
                // its own 2-hop scores), so the scan is per column too.
                for (col, spec) in self.columns.iter().enumerate() {
                    let components = spec.components();
                    let Some(second) = v_data.paths.get(col) else {
                        continue;
                    };
                    work.add(second.len() as u64);
                    self.col_ops[col].fetch_add(second.len() as u64, Ordering::Relaxed);
                    for &(z, sim_vz) in second {
                        if z == u || u_data.in_gamma(z) {
                            continue;
                        }
                        let path = components.combinator.combine(sims_uv[col], sim_vz);
                        cols[col].push((z, components.aggregator.lift(path), 1));
                    }
                }
            }
        }
        if cols.iter().all(Vec::is_empty) {
            None
        } else {
            Some(ScoreGather { cols })
        }
    }

    fn sum(&self, a: ScoreGather, b: ScoreGather, work: &mut WorkTally) -> ScoreGather {
        let ncols = self.columns.len();
        let take = |mut g: ScoreGather| -> Vec<Vec<(VertexId, f32, u32)>> {
            g.cols.resize(ncols, Vec::new());
            g.cols
        };
        let (a, b) = (take(a), take(b));
        let mut cols = Vec::with_capacity(ncols);
        for (col, (ca, cb)) in a.into_iter().zip(b).enumerate() {
            let cost = (ca.len() + cb.len()) as u64;
            work.add(cost);
            self.col_ops[col].fetch_add(cost, Ordering::Relaxed);
            cols.push(merge_column(&self.columns[col], ca, cb));
        }
        ScoreGather { cols }
    }

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        data: &mut PlanVertex,
        acc: Option<ScoreGather>,
        work: &mut WorkTally,
    ) {
        let ncols = self.columns.len();
        let mut merged = acc.unwrap_or_default();
        merged.cols.resize(ncols, Vec::new());
        data.predictions = merged
            .cols
            .into_iter()
            .enumerate()
            .map(|(col, triples)| {
                work.add(triples.len() as u64);
                let aggregator = &self.columns[col].components().aggregator;
                let scored: Vec<(VertexId, f32)> = triples
                    .into_iter()
                    .map(|(z, sigma, n)| (z, aggregator.post(sigma, n)))
                    .collect();
                top_k_by_score(scored, self.ks[col])
            })
            .collect();
    }
}

/// The paper's `merge` (line 16) for one column: a sorted-merge folding
/// same-candidate entries with the column's `⊕pre` — the exact fold of
/// [`steps::ScoreStep`](crate::steps::ScoreStep)'s `sum`.
fn merge_column(
    spec: &ScoreSpec,
    a: Vec<(VertexId, f32, u32)>,
    b: Vec<(VertexId, f32, u32)>,
) -> Vec<(VertexId, f32, u32)> {
    let aggregator = &spec.components().aggregator;
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let (z, sa, na) = a[i];
                let (_, sb, nb) = b[j];
                out.push((z, aggregator.pre(sa, sb), na + nb));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Fused promotion step of the 3-hop extension: move each column's 2-hop
/// scores into its path table. Apply-only, like
/// [`steps::PromoteScoresStep`](crate::steps::PromoteScoresStep).
#[derive(Clone, Debug)]
struct PlanPromoteStep<'p> {
    keeps: &'p [usize],
}

impl GasStep for PlanPromoteStep<'_> {
    type Vertex = PlanVertex;
    type Gather = ();

    fn name(&self) -> &str {
        "plan-3b-promote"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        _u_data: &PlanVertex,
        _v: VertexId,
        _v_data: &PlanVertex,
        _work: &mut WorkTally,
    ) -> Option<()> {
        None
    }

    fn sum(&self, _a: (), _b: (), _work: &mut WorkTally) {}

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        data: &mut PlanVertex,
        _acc: Option<()>,
        work: &mut WorkTally,
    ) {
        let ncols = self.keeps.len();
        let mut predictions = std::mem::take(&mut data.predictions);
        predictions.resize(ncols, Vec::new());
        data.paths = predictions
            .into_iter()
            .enumerate()
            .map(|(col, scores)| {
                let mut promoted = top_k_by_score(scores, self.keeps[col]);
                work.add(promoted.len() as u64);
                promoted.sort_unstable_by_key(|&(v, _)| v);
                promoted
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NamedScore;
    use crate::predictor_api::{PredictRequest, QuerySet};
    use snaple_gas::ClusterSpec;
    use snaple_graph::gen::datasets;

    fn four_spec_plan() -> ScorePlan {
        ScorePlan::parse("linearSum, counter, PPR, jaccard@agg=max").unwrap()
    }

    #[test]
    fn construction_rejects_empty_and_conflicting_plans() {
        assert!(matches!(
            ScorePlan::new(vec![]),
            Err(SnapleError::InvalidConfig(_))
        ));
        let err = ScorePlan::parse("jaccard@klocal8, cosine@klocal16").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("disagree on klocal"), "{msg}");
        let err = ScorePlan::parse("jaccard@depth2, cosine@depth3").unwrap_err();
        assert!(err.to_string().contains("disagree on depth"));
        // Agreeing pins are fine and land in the merged config.
        let plan = ScorePlan::parse("jaccard@klocal8, cosine@klocal8, counter").unwrap();
        assert_eq!(plan.config().klocal, Some(8));
    }

    #[test]
    fn plan_scoped_requests_override_the_base_config() {
        let plan = ScorePlan::parse("jaccard@thrinf@selmin@depth3").unwrap();
        assert_eq!(plan.config().thr_gamma, None);
        assert_eq!(plan.config().selection, SelectionPolicy::Min);
        assert_eq!(plan.config().path_length, PathLength::Three);
    }

    #[test]
    fn per_column_k_resolves_spec_override_or_plan_default() {
        let plan = ScorePlan::parse_with(
            &Registry::builtin(),
            "jaccard@k16, counter",
            PlanConfig::default().k(7),
        )
        .unwrap();
        assert_eq!(plan.column_k(0), 16);
        assert_eq!(plan.column_k(1), 7);
        assert_eq!(plan.combined_k(), 16);
    }

    #[test]
    fn fused_columns_match_standalone_snaple_runs_bit_for_bit() {
        let graph = datasets::GOWALLA.emulate(0.005, 3);
        let cluster = ClusterSpec::type_ii(4);
        let plan = four_spec_plan();
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let matrix = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        assert_eq!(matrix.num_columns(), 4);
        for col in 0..plan.num_columns() {
            let standalone = plan.column_snaple(col);
            let solo =
                Predictor::predict(&standalone, &PredictRequest::new(&graph, &cluster)).unwrap();
            for (u, rows) in matrix.column_rows(col) {
                assert_eq!(
                    rows,
                    solo.for_vertex(u),
                    "column {col} ({}) row {u} diverged",
                    matrix.labels()[col]
                );
            }
        }
    }

    #[test]
    fn fused_sweep_shares_gather_work_across_columns() {
        let graph = datasets::GOWALLA.emulate(0.005, 3);
        let cluster = ClusterSpec::type_ii(4);
        let plan = four_spec_plan();
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let matrix = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        let fused_gathers: u64 = matrix.stats.steps.iter().map(|s| s.gather_calls).sum();
        let mut independent_gathers = 0u64;
        for col in 0..plan.num_columns() {
            let solo = Predictor::predict(
                &plan.column_snaple(col),
                &PredictRequest::new(&graph, &cluster),
            )
            .unwrap();
            independent_gathers += solo.stats.steps.iter().map(|s| s.gather_calls).sum::<u64>();
        }
        // The acceptance bar: an N-spec plan costs < 60% of N sweeps; a
        // fully fused 2-hop plan costs ~1/N.
        assert!(
            (fused_gathers as f64) < 0.6 * independent_gathers as f64,
            "fused {fused_gathers} gathers !< 60% of independent {independent_gathers}"
        );
        // Attribution: per-column ops are recorded and sum to less than
        // the total (the remainder is the shared sweep).
        let attributed: u64 = (0..4).map(|c| matrix.column_work_ops(c)).sum();
        assert!(attributed > 0);
        assert!(attributed < matrix.stats.total_work_ops());
        assert_eq!(matrix.column_attribution().count(), 4);
    }

    #[test]
    fn targeted_plan_rows_match_the_full_sweep() {
        let graph = datasets::GOWALLA.emulate(0.005, 7);
        let cluster = ClusterSpec::type_ii(4);
        let plan = ScorePlan::parse("linearSum, counter@k3").unwrap();
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let full = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        let queries = QuerySet::sample(graph.num_vertices(), graph.num_vertices() / 20, 11);
        let targeted = prepared
            .execute_matrix(&ExecuteRequest::new().with_queries(&queries))
            .unwrap();
        for col in 0..plan.num_columns() {
            for (u, rows) in targeted.column_rows(col) {
                if queries.contains(u) {
                    assert_eq!(rows, full.scores(col, u), "column {col} row {u}");
                } else {
                    assert!(rows.is_empty(), "non-queried row {u} must stay empty");
                }
            }
        }
        assert!(targeted.stats.total_work_ops() < full.stats.total_work_ops());
    }

    #[test]
    fn three_hop_plans_fuse_too() {
        let graph = datasets::POKEC.emulate(0.002, 9);
        let cluster = ClusterSpec::type_ii(2);
        let plan = ScorePlan::parse_with(
            &Registry::builtin(),
            "counter@depth3, linearSum",
            PlanConfig::default().klocal(Some(10)),
        )
        .unwrap();
        assert_eq!(plan.config().path_length, PathLength::Three);
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let matrix = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        assert_eq!(matrix.stats.steps.len(), 5, "3-hop adds two fused steps");
        for col in 0..plan.num_columns() {
            let solo = Predictor::predict(
                &plan.column_snaple(col),
                &PredictRequest::new(&graph, &cluster),
            )
            .unwrap();
            for (u, rows) in matrix.column_rows(col) {
                assert_eq!(rows, solo.for_vertex(u), "column {col} row {u}");
            }
        }
    }

    #[test]
    fn combined_ranking_is_the_weighted_sum_of_columns() {
        let graph = datasets::GOWALLA.emulate(0.004, 5);
        let cluster = ClusterSpec::type_ii(2);
        let plan = ScorePlan::parse("counter@w0.25, jaccard@w2").unwrap();
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let matrix = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        let combined = matrix.combined(5);
        let mut checked = 0;
        for (u, rows) in combined.iter() {
            for &(z, score) in rows {
                let want: f32 = [0.25f32, 2.0]
                    .iter()
                    .enumerate()
                    .map(|(col, w)| {
                        matrix
                            .scores(col, u)
                            .iter()
                            .find(|&&(id, _)| id == z)
                            .map_or(0.0, |&(_, s)| w * s)
                    })
                    .sum();
                assert!((score - want).abs() < 1e-6, "vertex {u} candidate {z}");
                checked += 1;
            }
        }
        assert!(checked > 0);

        // A 1-column weight-1 plan's combined ranking IS the column.
        let single = ScorePlan::parse("linearSum").unwrap();
        let prepared = single
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let matrix = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        let combined = matrix.combined(single.combined_k());
        for (u, rows) in combined.iter() {
            assert_eq!(rows, matrix.scores(0, u));
        }
    }

    #[test]
    fn prepared_plan_serves_deltas_bit_identical_to_cold_rebuilds() {
        use snaple_graph::GraphDelta;
        let graph = datasets::GOWALLA.emulate(0.004, 5);
        let cluster = ClusterSpec::type_ii(4);
        let plan = ScorePlan::parse("linearSum, counter").unwrap();
        let mut prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();

        let mut delta = GraphDelta::new();
        for (u, v) in graph.edges().take(5) {
            delta.remove(u.as_u32(), v.as_u32());
        }
        let n = graph.num_vertices() as u32;
        delta.insert(0, n - 1).insert(1, n - 2);
        let applied = prepared.apply_delta(&delta).unwrap();
        assert_eq!(applied.removed_edges, 5);

        let mutated = graph.compact(&delta);
        let cold = plan
            .prepare_plan(&PrepareRequest::new(&mutated, &cluster))
            .unwrap();
        let warm_matrix = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        let cold_matrix = cold.execute_matrix(&ExecuteRequest::new()).unwrap();
        for col in 0..plan.num_columns() {
            for (u, rows) in warm_matrix.column_rows(col) {
                assert_eq!(rows, cold_matrix.scores(col, u), "column {col} row {u}");
            }
        }
    }

    #[test]
    fn plan_predictor_trait_round_trip() {
        let graph = datasets::GOWALLA.emulate(0.004, 5);
        let cluster = ClusterSpec::type_ii(2);
        let plan = four_spec_plan();
        // Through the boxed Predictor surface: prediction = combined view.
        let via_trait = Predictor::predict(&plan, &PredictRequest::new(&graph, &cluster)).unwrap();
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let matrix = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        let combined = matrix.combined(plan.combined_k());
        for (u, rows) in via_trait.iter() {
            assert_eq!(rows, combined.for_vertex(u));
        }
    }

    #[test]
    fn name_colliding_kernels_are_still_evaluated_in_fused_sweeps() {
        use crate::similarity::{NeighborhoodView, Similarity};
        use std::sync::Arc;
        // Regression for the Arc-identity sharing rule: a custom kernel
        // whose name() collides with the selection similarity must score
        // with its own function in the fused sweep, bit-identical to its
        // standalone run — not be silently replaced by the Jaccard value.
        #[derive(Debug)]
        struct FakeJaccard;
        impl Similarity for FakeJaccard {
            fn name(&self) -> &str {
                "jaccard"
            }
            fn score(&self, _u: NeighborhoodView<'_>, _v: NeighborhoodView<'_>) -> f32 {
                0.125
            }
        }
        let mut registry = Registry::builtin();
        registry.register_kernel("fakejac", || Arc::new(FakeJaccard));
        let graph = datasets::GOWALLA.emulate(0.003, 5);
        let cluster = ClusterSpec::type_ii(2);
        let plan = ScorePlan::parse_with(
            &registry,
            "fakejac, jaccard",
            PlanConfig::default().klocal(Some(8)),
        )
        .unwrap();
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let matrix = prepared.execute_matrix(&ExecuteRequest::new()).unwrap();
        let mut columns_differ = false;
        for col in 0..2 {
            let solo = Predictor::predict(
                &plan.column_snaple(col),
                &PredictRequest::new(&graph, &cluster),
            )
            .unwrap();
            for (u, rows) in matrix.column_rows(col) {
                assert_eq!(rows, solo.for_vertex(u), "column {col} row {u}");
                if rows != matrix.scores((col + 1) % 2, u) {
                    columns_differ = true;
                }
            }
        }
        assert!(
            columns_differ,
            "the constant fake kernel must produce different rankings than real Jaccard"
        );
    }

    #[test]
    fn snaple_is_the_one_spec_special_case() {
        let graph = datasets::GOWALLA.emulate(0.004, 7);
        let cluster = ClusterSpec::type_ii(4);
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .k(5)
                .klocal(Some(10)),
        );
        let plan = ScorePlan::from_snaple(&snaple).unwrap();
        assert_eq!(plan.num_columns(), 1);
        let deployment = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let matrix = deployment.execute_matrix(&ExecuteRequest::new()).unwrap();
        let direct = Predictor::predict(&snaple, &PredictRequest::new(&graph, &cluster)).unwrap();
        // ...and both match the unfused reference implementation.
        let reference = snaple
            .execute_unfused_on(deployment.deployment(), &ExecuteRequest::new())
            .unwrap();
        for (u, rows) in matrix.column_rows(0) {
            assert_eq!(rows, direct.for_vertex(u), "row {u}");
            assert_eq!(rows, reference.for_vertex(u), "reference row {u}");
        }
    }
}
