//! Deterministic top-k selection (`argtopk`, paper Algorithm 1).

use snaple_graph::VertexId;

/// Selects the `k` entries with the largest scores.
///
/// Ties break toward the smaller vertex id, making selection fully
/// deterministic — a requirement for the engine's "same result on any
/// cluster size" invariant. The result is sorted by descending score (then
/// ascending id).
///
/// ```
/// use snaple_core::topk::top_k_by_score;
/// use snaple_graph::VertexId;
/// let v = |i| VertexId::new(i);
/// let xs = vec![(v(1), 0.5), (v(2), 0.9), (v(3), 0.5), (v(4), 0.1)];
/// assert_eq!(top_k_by_score(xs, 2), vec![(v(2), 0.9), (v(1), 0.5)]);
/// ```
pub fn top_k_by_score(mut items: Vec<(VertexId, f32)>, k: usize) -> Vec<(VertexId, f32)> {
    if k == 0 {
        return Vec::new();
    }
    if items.len() > k {
        items.select_nth_unstable_by(k - 1, |a, b| cmp_desc(*a, *b));
        items.truncate(k);
    }
    items.sort_unstable_by(|a, b| cmp_desc(*a, *b));
    items
}

/// Selects the `k` entries with the *smallest* scores (used by the `Γmin`
/// sampling policy of the paper's §5.6). Result sorted ascending by score
/// (then ascending id).
pub fn bottom_k_by_score(mut items: Vec<(VertexId, f32)>, k: usize) -> Vec<(VertexId, f32)> {
    if k == 0 {
        return Vec::new();
    }
    if items.len() > k {
        items.select_nth_unstable_by(k - 1, |a, b| cmp_asc(*a, *b));
        items.truncate(k);
    }
    items.sort_unstable_by(|a, b| cmp_asc(*a, *b));
    items
}

// `f32::total_cmp` rather than `partial_cmp(..).unwrap_or(Equal)`: the
// latter makes the comparator non-transitive whenever a NaN appears
// (NaN == everything, while the non-NaN scores still order), which
// violates `select_nth_unstable_by`'s total-order contract and can
// silently select a wrong top-k set. Under `total_cmp`, NaN orders
// greater than +inf (and -NaN less than -inf), so selection stays a
// total order — deterministic even on poisoned scores.
fn cmp_desc(a: (VertexId, f32), b: (VertexId, f32)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

fn cmp_asc(a: (VertexId, f32), b: (VertexId, f32)) -> std::cmp::Ordering {
    a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn returns_everything_when_k_is_large() {
        let xs = vec![(v(1), 0.1), (v(2), 0.2)];
        assert_eq!(top_k_by_score(xs.clone(), 5).len(), 2);
        assert_eq!(bottom_k_by_score(xs, 5).len(), 2);
    }

    #[test]
    fn k_zero_is_empty() {
        let xs = vec![(v(1), 0.1)];
        assert!(top_k_by_score(xs.clone(), 0).is_empty());
        assert!(bottom_k_by_score(xs, 0).is_empty());
    }

    #[test]
    fn ties_break_by_smaller_id() {
        let xs = vec![(v(9), 0.5), (v(2), 0.5), (v(5), 0.5)];
        let top = top_k_by_score(xs.clone(), 2);
        assert_eq!(top, vec![(v(2), 0.5), (v(5), 0.5)]);
        let bot = bottom_k_by_score(xs, 2);
        assert_eq!(bot, vec![(v(2), 0.5), (v(5), 0.5)]);
    }

    #[test]
    fn nan_scores_do_not_corrupt_selection() {
        // Regression: with `partial_cmp(..).unwrap_or(Equal)` the
        // comparator is non-transitive in the presence of NaN (NaN ties
        // with everything while real scores still order), so
        // `select_nth_unstable_by` could return a wrong top-k set. Under
        // `total_cmp`, NaN ranks above +inf in descending order and the
        // real scores keep their exact relative order.
        let nan = f32::NAN;
        let xs = vec![
            (v(0), 0.3),
            (v(1), nan),
            (v(2), 0.9),
            (v(3), 0.1),
            (v(4), 0.5),
        ];
        let top = top_k_by_score(xs.clone(), 3);
        // NaN sorts greatest, then the real maxima in order.
        assert_eq!(top[0].0, v(1));
        assert!(top[0].1.is_nan());
        assert_eq!(top[1], (v(2), 0.9));
        assert_eq!(top[2], (v(4), 0.5));

        let bottom = bottom_k_by_score(xs, 3);
        assert_eq!(
            bottom,
            vec![(v(3), 0.1), (v(0), 0.3), (v(4), 0.5)],
            "ascending selection must keep NaN out of the bottom"
        );

        // Many NaNs: selection must stay deterministic and ordered,
        // whatever permutation the scores arrive in.
        let mixed: Vec<(VertexId, f32)> = (0..20)
            .map(|i| (v(i), if i % 3 == 0 { nan } else { i as f32 }))
            .collect();
        let mut reversed = mixed.clone();
        reversed.reverse();
        let a = top_k_by_score(mixed, 7);
        let b = top_k_by_score(reversed, 7);
        assert_eq!(a.len(), 7);
        for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert!(sa == sb || (sa.is_nan() && sb.is_nan()));
        }
        // NaNs first (they sort greatest), ids ascending among them.
        assert!(a[0].1.is_nan());
        assert_eq!(a[0].0, v(0));
    }

    #[test]
    fn bottom_k_mirrors_top_k() {
        let xs = vec![(v(1), 1.0), (v(2), 2.0), (v(3), 3.0)];
        assert_eq!(top_k_by_score(xs.clone(), 1)[0].0, v(3));
        assert_eq!(bottom_k_by_score(xs, 1)[0].0, v(1));
    }

    proptest! {
        #[test]
        fn top_k_really_selects_the_maxima(
            scores in proptest::collection::vec(0.0f32..1.0, 0..50),
            k in 0usize..20,
        ) {
            let items: Vec<(VertexId, f32)> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (v(i as u32), s))
                .collect();
            let top = top_k_by_score(items.clone(), k);
            prop_assert_eq!(top.len(), k.min(items.len()));
            // Sorted descending.
            prop_assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
            // Every excluded score must be <= the smallest included score.
            if let Some(&(_, cutoff)) = top.last() {
                let included: std::collections::HashSet<u32> =
                    top.iter().map(|(id, _)| id.as_u32()).collect();
                for (id, s) in &items {
                    if !included.contains(&id.as_u32()) {
                        prop_assert!(*s <= cutoff + 1e-6);
                    }
                }
            }
        }

        #[test]
        fn selection_is_permutation_invariant(
            scores in proptest::collection::vec(0.0f32..1.0, 1..30),
            k in 1usize..10,
        ) {
            let items: Vec<(VertexId, f32)> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (v(i as u32), s))
                .collect();
            let mut shuffled = items.clone();
            shuffled.reverse();
            prop_assert_eq!(
                top_k_by_score(items, k),
                top_k_by_score(shuffled, k)
            );
        }
    }
}
