//! Deterministic top-k selection (`argtopk`, paper Algorithm 1).

use snaple_graph::VertexId;

/// Selects the `k` entries with the largest scores.
///
/// Ties break toward the smaller vertex id, making selection fully
/// deterministic — a requirement for the engine's "same result on any
/// cluster size" invariant. The result is sorted by descending score (then
/// ascending id).
///
/// ```
/// use snaple_core::topk::top_k_by_score;
/// use snaple_graph::VertexId;
/// let v = |i| VertexId::new(i);
/// let xs = vec![(v(1), 0.5), (v(2), 0.9), (v(3), 0.5), (v(4), 0.1)];
/// assert_eq!(top_k_by_score(xs, 2), vec![(v(2), 0.9), (v(1), 0.5)]);
/// ```
pub fn top_k_by_score(mut items: Vec<(VertexId, f32)>, k: usize) -> Vec<(VertexId, f32)> {
    if k == 0 {
        return Vec::new();
    }
    if items.len() > k {
        items.select_nth_unstable_by(k - 1, |a, b| cmp_desc(*a, *b));
        items.truncate(k);
    }
    items.sort_unstable_by(|a, b| cmp_desc(*a, *b));
    items
}

/// Selects the `k` entries with the *smallest* scores (used by the `Γmin`
/// sampling policy of the paper's §5.6). Result sorted ascending by score
/// (then ascending id).
pub fn bottom_k_by_score(mut items: Vec<(VertexId, f32)>, k: usize) -> Vec<(VertexId, f32)> {
    if k == 0 {
        return Vec::new();
    }
    if items.len() > k {
        items.select_nth_unstable_by(k - 1, |a, b| cmp_asc(*a, *b));
        items.truncate(k);
    }
    items.sort_unstable_by(|a, b| cmp_asc(*a, *b));
    items
}

fn cmp_desc(a: (VertexId, f32), b: (VertexId, f32)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.0.cmp(&b.0))
}

fn cmp_asc(a: (VertexId, f32), b: (VertexId, f32)) -> std::cmp::Ordering {
    a.1.partial_cmp(&b.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.0.cmp(&b.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn returns_everything_when_k_is_large() {
        let xs = vec![(v(1), 0.1), (v(2), 0.2)];
        assert_eq!(top_k_by_score(xs.clone(), 5).len(), 2);
        assert_eq!(bottom_k_by_score(xs, 5).len(), 2);
    }

    #[test]
    fn k_zero_is_empty() {
        let xs = vec![(v(1), 0.1)];
        assert!(top_k_by_score(xs.clone(), 0).is_empty());
        assert!(bottom_k_by_score(xs, 0).is_empty());
    }

    #[test]
    fn ties_break_by_smaller_id() {
        let xs = vec![(v(9), 0.5), (v(2), 0.5), (v(5), 0.5)];
        let top = top_k_by_score(xs.clone(), 2);
        assert_eq!(top, vec![(v(2), 0.5), (v(5), 0.5)]);
        let bot = bottom_k_by_score(xs, 2);
        assert_eq!(bot, vec![(v(2), 0.5), (v(5), 0.5)]);
    }

    #[test]
    fn bottom_k_mirrors_top_k() {
        let xs = vec![(v(1), 1.0), (v(2), 2.0), (v(3), 3.0)];
        assert_eq!(top_k_by_score(xs.clone(), 1)[0].0, v(3));
        assert_eq!(bottom_k_by_score(xs, 1)[0].0, v(1));
    }

    proptest! {
        #[test]
        fn top_k_really_selects_the_maxima(
            scores in proptest::collection::vec(0.0f32..1.0, 0..50),
            k in 0usize..20,
        ) {
            let items: Vec<(VertexId, f32)> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (v(i as u32), s))
                .collect();
            let top = top_k_by_score(items.clone(), k);
            prop_assert_eq!(top.len(), k.min(items.len()));
            // Sorted descending.
            prop_assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
            // Every excluded score must be <= the smallest included score.
            if let Some(&(_, cutoff)) = top.last() {
                let included: std::collections::HashSet<u32> =
                    top.iter().map(|(id, _)| id.as_u32()).collect();
                for (id, s) in &items {
                    if !included.contains(&id.as_u32()) {
                        prop_assert!(*s <= cutoff + 1e-6);
                    }
                }
            }
        }

        #[test]
        fn selection_is_permutation_invariant(
            scores in proptest::collection::vec(0.0f32..1.0, 1..30),
            k in 1usize..10,
        ) {
            let items: Vec<(VertexId, f32)> = scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (v(i as u32), s))
                .collect();
            let mut shuffled = items.clone();
            shuffled.reverse();
            prop_assert_eq!(
                top_k_by_score(items, k),
                top_k_by_score(shuffled, k)
            );
        }
    }
}
