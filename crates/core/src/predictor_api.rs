//! The unified prediction API: [`Predictor`], [`PredictRequest`],
//! [`QuerySet`], and the prepare/execute split
//! ([`PrepareRequest`]/[`PreparedPredictor`]/[`ExecuteRequest`]).
//!
//! Every backend in the workspace — SNAPLE itself, the paper's BASELINE,
//! the Cassovary-style random-walk comparator, and the supervised
//! re-ranker — answers the same calls:
//!
//! ```text
//! fn prepare(&self, req: &PrepareRequest<'_>) -> Result<Box<dyn PreparedPredictor>, SnapleError>
//! fn predict(&self, req: &PredictRequest<'_>) -> Result<Prediction, SnapleError>
//! ```
//!
//! # Prepare once, execute many
//!
//! A one-shot [`Predictor::predict`] rebuilds all heavy per-graph state —
//! the O(edges) vertex-cut partition, the cost model, backend-specific
//! precomputation — on every call. A serving deployment answering a stream
//! of small query sets against the *same* graph and cluster should pay
//! that setup once: [`Predictor::prepare`] builds a [`PreparedPredictor`]
//! owning the immutable heavy state, and its
//! [`execute`](PreparedPredictor::execute) answers any number of
//! [`ExecuteRequest`]s (query subsets, optional attributes, optional seed
//! override) against it. `predict` is a thin `prepare` + `execute`
//! composition, so the two paths return bit-identical rows:
//!
//! ```
//! use snaple_core::{
//!     ExecuteRequest, PredictRequest, Predictor, PrepareRequest, QuerySet, NamedScore, Snaple,
//!     SnapleConfig,
//! };
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! // Pay the partition build once...
//! let prepared = snaple.prepare(&PrepareRequest::new(&graph, &cluster))?;
//! // ...then answer many requests against it.
//! for seed in 0..3 {
//!     let queries = QuerySet::sample(graph.num_vertices(), 50, seed);
//!     let served = prepared.execute(&ExecuteRequest::new().with_queries(&queries))?;
//!     let one_shot = snaple.predict(
//!         &PredictRequest::new(&graph, &cluster).with_queries(&queries),
//!     )?;
//!     for q in queries.iter() {
//!         assert_eq!(served.for_vertex(q), one_shot.for_vertex(q));
//!     }
//! }
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```
//!
//! A [`PredictRequest`] bundles everything a prediction run needs: the
//! graph, the simulated [`ClusterSpec`], optional per-vertex content
//! attributes, and — the serving-oriented capability — an optional
//! [`QuerySet`] of source vertices. With a query set, backends restrict
//! their work to the vertices that can still influence the queried rows
//! (SNAPLE and BASELINE run their GAS steps under shrinking
//! [`VertexMask`]s, the random-walk backend only walks from the queries),
//! which is how a "who to follow" service computes suggestions for the
//! users who are actually online instead of the whole graph.
//!
//! Targeted runs are *exact*: the rows they return are bit-identical to
//! the same rows of an all-vertices run with the same configuration and
//! seeds; rows outside the query set are empty.
//!
//! # Example
//!
//! ```
//! use snaple_core::{PredictRequest, Predictor, QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! // Any backend behind the one interface:
//! let snaple: &dyn Predictor =
//!     &Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! // All-vertices (batch) prediction:
//! let all = snaple.predict(&PredictRequest::new(&graph, &cluster))?;
//! assert_eq!(all.num_vertices(), graph.num_vertices());
//!
//! // Targeted (serving) prediction for 1% of the users:
//! let queries = QuerySet::sample(graph.num_vertices(), graph.num_vertices() / 100, 7);
//! let req = PredictRequest::new(&graph, &cluster).with_queries(&queries);
//! let targeted = snaple.predict(&req)?;
//! for q in queries.iter() {
//!     assert_eq!(targeted.for_vertex(q), all.for_vertex(q));
//! }
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

use snaple_gas::{ClusterSpec, DeltaStats};
use snaple_graph::hash::hash2;
use snaple_graph::{GraphDelta, GraphStore, VertexId, VertexMask};

use crate::error::SnapleError;
use crate::predictor::Prediction;

/// A set of source vertices to predict for, sorted and deduplicated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySet {
    ids: Vec<VertexId>,
}

impl QuerySet {
    /// Builds a query set from any id iterator (duplicates are dropped,
    /// order does not matter).
    pub fn new(ids: impl IntoIterator<Item = VertexId>) -> Self {
        let mut ids: Vec<VertexId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        QuerySet { ids }
    }

    /// Builds a query set from raw `u32` indices.
    pub fn from_indices(ids: impl IntoIterator<Item = u32>) -> Self {
        QuerySet::new(ids.into_iter().map(VertexId::new))
    }

    /// Deterministically samples `count` distinct vertices out of
    /// `0..num_vertices` (hash-ranked, so independent of any RNG state).
    ///
    /// Sampling at least `num_vertices` ids returns every vertex.
    pub fn sample(num_vertices: usize, count: usize, seed: u64) -> Self {
        if count >= num_vertices {
            return QuerySet::from_indices(0..num_vertices as u32);
        }
        let mut ranked: Vec<(u64, u32)> = (0..num_vertices as u32)
            .map(|v| (hash2(seed, v as u64, 0x5e7), v))
            .collect();
        ranked.sort_unstable();
        ranked.truncate(count);
        QuerySet::from_indices(ranked.into_iter().map(|(_, v)| v))
    }

    /// Number of queried vertices.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty (a valid request: no rows are produced).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted queried ids.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.ids
    }

    /// Iterates the queried ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.ids.iter().copied()
    }

    /// Whether `v` is queried.
    pub fn contains(&self, v: VertexId) -> bool {
        self.ids.binary_search(&v).is_ok()
    }

    /// Largest queried id, if any.
    pub fn max_id(&self) -> Option<VertexId> {
        self.ids.last().copied()
    }

    /// The query set as an active-vertex mask over `num_vertices`.
    ///
    /// # Panics
    ///
    /// Panics when an id is out of range; [`PredictRequest::validate`]
    /// reports that case as an error before backends get here.
    pub fn to_mask(&self, num_vertices: usize) -> VertexMask {
        VertexMask::from_vertices(num_vertices, self.iter())
    }
}

impl FromIterator<VertexId> for QuerySet {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        QuerySet::new(iter)
    }
}

/// One prediction call: the graph and cluster to run on, plus optional
/// per-vertex attributes and an optional query subset.
///
/// Requests are cheap reference bundles — build one per run with
/// [`PredictRequest::new`] and the `with_*` builders.
#[derive(Clone, Copy, Debug)]
pub struct PredictRequest<'a> {
    graph: &'a dyn GraphStore,
    cluster: &'a ClusterSpec,
    attributes: Option<&'a [Vec<u32>]>,
    queries: Option<&'a QuerySet>,
}

impl<'a> PredictRequest<'a> {
    /// Creates an all-vertices request without attributes.
    pub fn new(graph: &'a dyn GraphStore, cluster: &'a ClusterSpec) -> Self {
        PredictRequest {
            graph,
            cluster,
            attributes: None,
            queries: None,
        }
    }

    /// Attaches per-vertex content attributes: `attributes[i]` becomes
    /// vertex `i`'s tag bag, visible to content-aware similarities such as
    /// [`similarity::ContentBlend`](crate::similarity::ContentBlend).
    pub fn with_attributes(mut self, attributes: &'a [Vec<u32>]) -> Self {
        self.attributes = Some(attributes);
        self
    }

    /// Restricts prediction to the sources in `queries`.
    pub fn with_queries(mut self, queries: &'a QuerySet) -> Self {
        self.queries = Some(queries);
        self
    }

    /// The graph to predict over.
    pub fn graph(&self) -> &'a dyn GraphStore {
        self.graph
    }

    /// The simulated cluster to run on.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.cluster
    }

    /// Per-vertex content attributes, if attached.
    pub fn attributes(&self) -> Option<&'a [Vec<u32>]> {
        self.attributes
    }

    /// The query subset, if any (`None` means all vertices).
    pub fn queries(&self) -> Option<&'a QuerySet> {
        self.queries
    }

    /// Checks the request's internal consistency: attributes must cover
    /// every vertex and queried ids must exist in the graph.
    ///
    /// Backends call this first; it is public so front ends can fail fast
    /// before spending work.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] describing the mismatch.
    pub fn validate(&self) -> Result<(), SnapleError> {
        if let Some(attrs) = self.attributes {
            if attrs.len() != self.graph.num_vertices() {
                return Err(SnapleError::InvalidConfig(format!(
                    "attributes cover {} vertices but the graph has {}",
                    attrs.len(),
                    self.graph.num_vertices()
                )));
            }
        }
        if let Some(queries) = self.queries {
            if let Some(max) = queries.max_id() {
                if max.index() >= self.graph.num_vertices() {
                    return Err(SnapleError::InvalidConfig(format!(
                        "query vertex {} out of range: the graph has {} vertices",
                        max,
                        self.graph.num_vertices()
                    )));
                }
            }
        }
        Ok(())
    }

    /// The active-vertex mask of the query subset (`None` for
    /// all-vertices requests).
    pub fn query_mask(&self) -> Option<VertexMask> {
        self.queries.map(|q| q.to_mask(self.graph.num_vertices()))
    }
}

/// The *prepare* half of a prediction lifecycle: the graph and the
/// simulated cluster the heavy per-graph state should be built for.
#[derive(Clone, Copy, Debug)]
pub struct PrepareRequest<'a> {
    graph: &'a dyn GraphStore,
    cluster: &'a ClusterSpec,
}

impl<'a> PrepareRequest<'a> {
    /// Creates a prepare request.
    pub fn new(graph: &'a dyn GraphStore, cluster: &'a ClusterSpec) -> Self {
        PrepareRequest { graph, cluster }
    }

    /// The graph to prepare for.
    pub fn graph(&self) -> &'a dyn GraphStore {
        self.graph
    }

    /// The simulated cluster to prepare for.
    pub fn cluster(&self) -> &'a ClusterSpec {
        self.cluster
    }
}

/// The *execute* half of a prediction lifecycle: everything that may vary
/// per request against a prepared graph/cluster — the query subset,
/// optional per-vertex attributes, and an optional seed override for the
/// randomized parts of a run (neighborhood truncation, `klocal` sampling,
/// walk steps; the prepared partition layout is fixed and unaffected).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecuteRequest<'a> {
    queries: Option<&'a QuerySet>,
    attributes: Option<&'a [Vec<u32>]>,
    seed: Option<u64>,
}

impl<'a> ExecuteRequest<'a> {
    /// Creates an all-vertices request without attributes, running with
    /// the predictor's configured seed.
    pub fn new() -> Self {
        ExecuteRequest::default()
    }

    /// Restricts execution to the sources in `queries`.
    pub fn with_queries(mut self, queries: &'a QuerySet) -> Self {
        self.queries = Some(queries);
        self
    }

    /// Attaches per-vertex content attributes (see
    /// [`PredictRequest::with_attributes`]).
    pub fn with_attributes(mut self, attributes: &'a [Vec<u32>]) -> Self {
        self.attributes = Some(attributes);
        self
    }

    /// Overrides the seed of the run's randomized parts.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The query subset, if any (`None` means all vertices).
    pub fn queries(&self) -> Option<&'a QuerySet> {
        self.queries
    }

    /// Per-vertex content attributes, if attached.
    pub fn attributes(&self) -> Option<&'a [Vec<u32>]> {
        self.attributes
    }

    /// The seed override, if any.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Checks the request against the prepared graph: attributes must
    /// cover every vertex and queried ids must exist.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] describing the mismatch.
    pub fn validate_for(&self, graph: &dyn GraphStore) -> Result<(), SnapleError> {
        if let Some(attrs) = self.attributes {
            if attrs.len() != graph.num_vertices() {
                return Err(SnapleError::InvalidConfig(format!(
                    "attributes cover {} vertices but the graph has {}",
                    attrs.len(),
                    graph.num_vertices()
                )));
            }
        }
        if let Some(queries) = self.queries {
            if let Some(max) = queries.max_id() {
                if max.index() >= graph.num_vertices() {
                    return Err(SnapleError::InvalidConfig(format!(
                        "query vertex {} out of range: the graph has {} vertices",
                        max,
                        graph.num_vertices()
                    )));
                }
            }
        }
        Ok(())
    }

    /// The active-vertex mask of the query subset over `graph` (`None`
    /// for all-vertices requests).
    pub fn query_mask(&self, graph: &dyn GraphStore) -> Option<VertexMask> {
        self.queries.map(|q| q.to_mask(graph.num_vertices()))
    }
}

/// One-time setup costs captured by [`Predictor::prepare`].
#[derive(Clone, Debug, Default)]
pub struct SetupStats {
    /// Total host wall-clock seconds the `prepare` call took (partition
    /// build plus backend-specific precomputation).
    pub prepare_wall_seconds: f64,
    /// Host wall-clock seconds of the vertex-cut partition build alone
    /// (zero for backends that do not partition, e.g. random walks).
    pub partition_build_seconds: f64,
    /// Replication factor of the prepared partition (1.0 for
    /// non-partitioning backends).
    pub replication_factor: f64,
}

/// A predictor with its heavy per-graph state already built: the *execute
/// many* half of the serving lifecycle.
///
/// Implementations own the immutable state `prepare` built — partition
/// layout, replica/presence masks, cost model, degree tables, feature
/// panel plans — and answer any number of [`ExecuteRequest`]s against it.
/// `execute` must be deterministic: the same request always returns
/// bit-identical rows, and those rows match a fresh one-shot
/// [`Predictor::predict`] with the same graph, cluster, configuration and
/// seed.
///
/// # Sharing contract
///
/// `execute` takes `&self` and every per-run mutable state (engine
/// accounting, vertex state vectors, RNG-free hash seeds) must be truly
/// per-call, so one prepared predictor can serve **concurrent** callers:
/// the trait requires `Send + Sync`, and
/// [`ConcurrentServer`](crate::concurrent::ConcurrentServer) shares one
/// snapshot across its whole worker pool behind an `Arc`. Mutation goes
/// through two distinct paths:
///
/// * [`apply_delta`](PreparedPredictor::apply_delta) (`&mut self`) —
///   refreshes this predictor **in place**; cheapest, but requires
///   exclusive access (the sequential [`Server`](crate::serve::Server)
///   uses it).
/// * [`fork_with_delta`](PreparedPredictor::fork_with_delta) (`&self`) —
///   builds the post-delta snapshot **off to the side** and leaves `self`
///   untouched, so in-flight readers finish on the old state; the
///   concurrent server publishes the fork as a new epoch.
pub trait PreparedPredictor: Send + Sync {
    /// Answers one request against the prepared state.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] for malformed requests (out-of-range
    /// queries, short attribute tables, attributes on a structural-only
    /// backend); [`SnapleError::Engine`] when the simulated cluster cannot
    /// execute the run.
    fn execute(&self, req: &ExecuteRequest<'_>) -> Result<Prediction, SnapleError>;

    /// Ingests a batch of edge insertions/removals *without* rebuilding
    /// the heavy prepared state from scratch — the streaming half of the
    /// serving lifecycle (`prepare → execute → apply_delta → execute`).
    ///
    /// The contract mirrors the determinism guarantee of
    /// [`execute`](PreparedPredictor::execute): after an applied delta,
    /// every subsequent request returns rows bit-identical to a cold
    /// [`Predictor::prepare`] on the mutated graph. Partition-backed
    /// implementations re-route only the touched vertex-cut partitions
    /// (see [`snaple_gas::Deployment::apply_delta`]); partition-free
    /// backends just refresh their per-graph tables.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError::Engine`] from the underlying deployment
    /// refresh.
    fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DeltaStats, SnapleError>;

    /// Builds the post-delta snapshot **off to the side**: a fully owned
    /// (`'static`) copy of the prepared state with `delta` applied, while
    /// `self` stays untouched and keeps answering requests.
    ///
    /// This is the write path of epoch-based concurrent serving
    /// ([`ConcurrentServer`](crate::concurrent::ConcurrentServer)): the
    /// fork is built while readers execute on the current snapshot, then
    /// atomically published; in-flight reads finish on the old epoch and
    /// never block on the update. The copy is memcpy-bound (graph arrays,
    /// partition edge lists — see
    /// [`snaple_gas::Deployment::detach`]); the delta application on the
    /// fork is the same incremental routine as
    /// [`apply_delta`](PreparedPredictor::apply_delta), so the fork's
    /// subsequent results are bit-identical to a cold
    /// [`Predictor::prepare`] on the mutated graph.
    ///
    /// # Errors
    ///
    /// As [`apply_delta`](PreparedPredictor::apply_delta); on error no
    /// snapshot is produced and `self` is unchanged.
    fn fork_with_delta(
        &self,
        delta: &GraphDelta,
    ) -> Result<(Box<dyn PreparedPredictor>, DeltaStats), SnapleError>;

    /// The setup costs paid at prepare time — what repeated `execute`
    /// calls amortize.
    fn setup(&self) -> &SetupStats;
}

/// The unified prediction interface every backend implements.
///
/// Backends implement [`Predictor::prepare`]; the one-shot
/// [`Predictor::predict`] is a provided `prepare` + `execute` composition,
/// so implementations must honor the whole request there: run on
/// [`PredictRequest::graph`] and [`PredictRequest::cluster`], respect
/// [`PredictRequest::queries`] exactly (queried rows bit-identical to an
/// all-vertices run, all other rows empty), and either consume or reject
/// [`PredictRequest::attributes`].
pub trait Predictor {
    /// Builds the heavy per-graph state once, returning a
    /// [`PreparedPredictor`] that answers many [`ExecuteRequest`]s.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] for unusable configurations or
    /// cluster shapes.
    fn prepare<'a>(
        &'a self,
        req: &PrepareRequest<'a>,
    ) -> Result<Box<dyn PreparedPredictor + 'a>, SnapleError>;

    /// Runs one prediction request: `prepare` + a single `execute`.
    ///
    /// The returned statistics include the partition build this one-shot
    /// call paid for ([`snaple_gas::RunStats::partition_build_seconds`]);
    /// a prepared predictor's `execute` reports zero there.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] for unusable configurations or
    /// malformed requests; [`SnapleError::Engine`] when the simulated
    /// cluster cannot execute the run (e.g. memory exhaustion).
    fn predict(&self, req: &PredictRequest<'_>) -> Result<Prediction, SnapleError> {
        req.validate()?;
        let prepared = self.prepare(&PrepareRequest::new(req.graph(), req.cluster()))?;
        let mut exec = ExecuteRequest::new();
        if let Some(q) = req.queries() {
            exec = exec.with_queries(q);
        }
        if let Some(a) = req.attributes() {
            exec = exec.with_attributes(a);
        }
        let mut prediction = prepared.execute(&exec)?;
        prediction.stats.partition_build_seconds += prepared.setup().partition_build_seconds;
        Ok(prediction)
    }
}

impl<P: Predictor + ?Sized> Predictor for &P {
    fn prepare<'a>(
        &'a self,
        req: &PrepareRequest<'a>,
    ) -> Result<Box<dyn PreparedPredictor + 'a>, SnapleError> {
        (**self).prepare(req)
    }

    fn predict(&self, req: &PredictRequest<'_>) -> Result<Prediction, SnapleError> {
        (**self).predict(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_graph::CsrGraph;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn query_sets_sort_and_dedup() {
        let q = QuerySet::from_indices([5, 1, 5, 3, 1]);
        assert_eq!(q.as_slice(), &[v(1), v(3), v(5)]);
        assert_eq!(q.len(), 3);
        assert!(q.contains(v(3)));
        assert!(!q.contains(v(2)));
        assert_eq!(q.max_id(), Some(v(5)));
    }

    #[test]
    fn sampling_is_deterministic_distinct_and_bounded() {
        let a = QuerySet::sample(1_000, 50, 7);
        let b = QuerySet::sample(1_000, 50, 7);
        let c = QuerySet::sample(1_000, 50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must sample differently");
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|id| id.index() < 1_000));
        assert_eq!(QuerySet::sample(10, 99, 1).len(), 10);
    }

    #[test]
    fn validation_catches_out_of_range_queries_and_short_attributes() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let cluster = ClusterSpec::type_i(1);
        assert!(PredictRequest::new(&g, &cluster).validate().is_ok());

        let bad_q = QuerySet::from_indices([0, 3]);
        let req = PredictRequest::new(&g, &cluster).with_queries(&bad_q);
        assert!(matches!(req.validate(), Err(SnapleError::InvalidConfig(_))));

        let attrs = vec![vec![1u32]; 2];
        let req = PredictRequest::new(&g, &cluster).with_attributes(&attrs);
        assert!(matches!(req.validate(), Err(SnapleError::InvalidConfig(_))));

        let ok_q = QuerySet::from_indices([0, 2]);
        let attrs = vec![vec![1u32]; 3];
        let req = PredictRequest::new(&g, &cluster)
            .with_attributes(&attrs)
            .with_queries(&ok_q);
        assert!(req.validate().is_ok());
        assert_eq!(req.query_mask().unwrap().len(), 2);
    }
}
