//! Path combinators (`⊗`, paper §3.1, Table 1).
//!
//! A combinator merges the raw similarities of the two edges of a 2-hop
//! path `u → v → z` into a single *path similarity*
//! `sim⋆_v(u, z) = sim(u, v) ⊗ sim(v, z)`. The paper requires `⊗` to be
//! monotonically increasing in both arguments; the property tests in this
//! module enforce that for every shipped combinator.

use std::fmt::Debug;

/// A binary path combinator; see the [module docs](self).
pub trait Combinator: Send + Sync + Debug {
    /// Stable name for reports ("linear", "eucl", ...).
    fn name(&self) -> &str;

    /// Combines the raw similarities of the path's two edges.
    fn combine(&self, a: f32, b: f32) -> f32;
}

/// Linear combination `α·a + (1−α)·b` (paper Table 1, row *linear*).
///
/// The paper's evaluation fixes `α = 0.9`, "which was found to return the
/// best predictions" (§5.2).
#[derive(Copy, Clone, Debug)]
pub struct Linear {
    /// Weight of the first hop's similarity.
    pub alpha: f32,
}

impl Linear {
    /// Creates a linear combinator.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is non-finite (NaN, ±∞) or not in `[0, 1]`; use
    /// [`Linear::try_new`] for a fallible variant.
    pub fn new(alpha: f32) -> Self {
        Linear::try_new(alpha).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects non-finite `alpha` and values
    /// outside `[0, 1]` instead of panicking. A NaN `alpha` would
    /// silently poison every combined path score downstream, so it is
    /// caught here at construction.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending `alpha`.
    pub fn try_new(alpha: f32) -> Result<Self, String> {
        if !alpha.is_finite() {
            return Err(format!("alpha must be finite, got {alpha}"));
        }
        if !(0.0..=1.0).contains(&alpha) {
            return Err(format!("alpha must be in [0, 1], got {alpha}"));
        }
        Ok(Linear { alpha })
    }
}

impl Default for Linear {
    fn default() -> Self {
        Linear { alpha: 0.9 }
    }
}

impl Combinator for Linear {
    fn name(&self) -> &str {
        "linear"
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        self.alpha * a + (1.0 - self.alpha) * b
    }
}

/// Euclidean norm `sqrt(a² + b²)` (row *eucl*).
#[derive(Copy, Clone, Debug, Default)]
pub struct Euclidean;

impl Combinator for Euclidean {
    fn name(&self) -> &str {
        "eucl"
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        (a * a + b * b).sqrt()
    }
}

/// Geometric mean `sqrt(a·b)` (row *geom*).
#[derive(Copy, Clone, Debug, Default)]
pub struct Geometric;

impl Combinator for Geometric {
    fn name(&self) -> &str {
        "geom"
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        (a * b).sqrt()
    }
}

/// Plain sum `a + b` (row *sum*; the special case `α = ½` of [`Linear`]
/// scaled by 2 — used by the paper's PPR configuration).
#[derive(Copy, Clone, Debug, Default)]
pub struct Arithmetic;

impl Combinator for Arithmetic {
    fn name(&self) -> &str {
        "sum"
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }
}

/// Constant `1` (row *count*): every path contributes equally, reducing the
/// final score to the number of 2-hop paths — the *counter* configuration.
#[derive(Copy, Clone, Debug, Default)]
pub struct Count;

impl Combinator for Count {
    fn name(&self) -> &str {
        "count"
    }

    fn combine(&self, _a: f32, _b: f32) -> f32 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all() -> Vec<Box<dyn Combinator>> {
        vec![
            Box::new(Linear::default()),
            Box::new(Linear::new(0.5)),
            Box::new(Euclidean),
            Box::new(Geometric),
            Box::new(Arithmetic),
            Box::new(Count),
        ]
    }

    #[test]
    fn table_one_examples() {
        assert!((Linear::new(0.5).combine(0.2, 0.4) - 0.3).abs() < 1e-6);
        assert!((Euclidean.combine(3.0, 4.0) - 5.0).abs() < 1e-6);
        assert!((Geometric.combine(0.25, 1.0) - 0.5).abs() < 1e-6);
        assert!((Arithmetic.combine(0.2, 0.3) - 0.5).abs() < 1e-6);
        assert_eq!(Count.combine(0.9, 0.1), 1.0);
    }

    #[test]
    fn linear_alpha_point_nine_weights_first_hop() {
        let c = Linear::default();
        assert!(c.combine(1.0, 0.0) > c.combine(0.0, 1.0));
        assert!((c.combine(1.0, 0.0) - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn linear_rejects_bad_alpha() {
        let _ = Linear::new(1.5);
    }

    #[test]
    fn linear_rejects_non_finite_alpha_at_construction() {
        // A NaN alpha would make every combined score NaN without any
        // error surfacing until top-k selection; validate up front.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = Linear::try_new(bad).unwrap_err();
            assert!(err.contains("finite"), "{err}");
        }
        assert!(Linear::try_new(1.5).unwrap_err().contains("[0, 1]"));
        assert!(Linear::try_new(-0.1).is_err());
        assert_eq!(Linear::try_new(0.25).unwrap().alpha, 0.25);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn linear_new_panics_on_nan() {
        let _ = Linear::new(f32::NAN);
    }

    proptest! {
        /// Paper §3.1: ⊗ must be monotonically increasing on both
        /// parameters (weakly, since Count is constant).
        #[test]
        fn combinators_are_monotone(
            a in 0.0f32..1.0,
            b in 0.0f32..1.0,
            da in 0.0f32..1.0,
            db in 0.0f32..1.0,
        ) {
            for c in all() {
                let base = c.combine(a, b);
                prop_assert!(
                    c.combine(a + da, b) >= base - 1e-6,
                    "{} not monotone in a", c.name()
                );
                prop_assert!(
                    c.combine(a, b + db) >= base - 1e-6,
                    "{} not monotone in b", c.name()
                );
            }
        }

        #[test]
        fn combinators_are_nonnegative(a in 0.0f32..1.0, b in 0.0f32..1.0) {
            for c in all() {
                prop_assert!(c.combine(a, b) >= 0.0, "{}", c.name());
            }
        }
    }
}
