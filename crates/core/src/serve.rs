//! The batching serve layer: answer a *stream* of query-set requests
//! against one prepared predictor.
//!
//! A production "who to follow" deployment receives many small requests
//! per second against the same graph. Two amortizations make that cheap
//! here:
//!
//! 1. **Prepare once** — the [`Server`] holds a
//!    [`PreparedPredictor`], so the O(edges) partition build and all
//!    backend precomputation are paid a single time for the whole stream
//!    (see [`Predictor::prepare`]).
//! 2. **Coalesce requests** — [`Server::serve_batch`] unions the query
//!    sets of concurrent requests into one active-vertex mask, runs the
//!    masked supersteps once, and demultiplexes the rows back per
//!    request. Because masked runs are *exact* (each queried row is
//!    bit-identical to an all-vertices run), the demultiplexed rows are
//!    bit-identical to executing every request individually — the batch
//!    only shares the fixed per-superstep costs.
//!
//! The served graph does not have to stay frozen: update batches
//! ([`Server::apply_update`]) interleave with prediction batches, folding
//! edge insertions/removals into the prepared deployment in place — a
//! per-delta cost proportional to the delta, not to the graph — while
//! every subsequent prediction stays bit-identical to a cold rebuild on
//! the mutated graph.
//!
//! ```
//! use snaple_core::serve::Server;
//! use snaple_core::{QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let mut server = Server::new(&snaple, &graph, &cluster)?;
//! // Four concurrent user requests, answered in one shared superstep run:
//! let requests: Vec<QuerySet> = (0..4)
//!     .map(|i| QuerySet::sample(graph.num_vertices(), 25, i))
//!     .collect();
//! let responses = server.serve_batch(&requests)?;
//! assert_eq!(responses.len(), 4);
//! println!("{}", server.stats().summary());
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

use std::time::Instant;

use snaple_gas::{ClusterSpec, DeltaStats};
use snaple_graph::{CsrGraph, GraphDelta, VertexId};

use crate::error::SnapleError;
use crate::predictor::Prediction;
use crate::predictor_api::{
    ExecuteRequest, Predictor, PrepareRequest, PreparedPredictor, QuerySet,
};

/// Aggregate statistics of a request stream served by a [`Server`].
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Requests answered.
    pub requests: usize,
    /// Shared superstep runs executed (one per served batch).
    pub batches: usize,
    /// Sum of per-request query counts, as received.
    pub queries_received: usize,
    /// Sum of the executed union-mask sizes — smaller than
    /// `queries_received` whenever coalescing deduplicated overlapping
    /// queries.
    pub union_queries: usize,
    /// Simulated cluster seconds across all shared runs.
    pub simulated_seconds: f64,
    /// Host wall-clock seconds spent serving (excludes setup).
    pub serve_wall_seconds: f64,
    /// Host wall-clock seconds the one-time `prepare` took.
    pub setup_wall_seconds: f64,
    /// Host wall-clock seconds of the one-time partition build within
    /// setup.
    pub partition_build_seconds: f64,
    /// Replication factor of the prepared partition.
    pub replication_factor: f64,
    /// Graph-update (delta) requests applied to the stream's deployment.
    pub updates: usize,
    /// Edge insertions applied across all updates.
    pub edges_inserted: usize,
    /// Edge removals applied across all updates.
    pub edges_removed: usize,
    /// Host wall-clock seconds spent applying deltas in place — the cost
    /// the incremental path pays *instead of* a full re-prepare per
    /// update.
    pub delta_apply_seconds: f64,
    /// Cumulative count of vertex-cut partitions the updates touched.
    pub delta_touched_partitions: usize,
}

impl ServerStats {
    /// Requests answered per host wall-clock second of serving.
    pub fn throughput_rps(&self) -> f64 {
        if self.serve_wall_seconds > 0.0 {
            self.requests as f64 / self.serve_wall_seconds
        } else {
            0.0
        }
    }

    /// Mean host latency per request in seconds (batch cost split evenly
    /// across its requests).
    pub fn mean_latency_seconds(&self) -> f64 {
        if self.requests > 0 {
            self.serve_wall_seconds / self.requests as f64
        } else {
            0.0
        }
    }

    /// How many received queries each executed union query stood for
    /// (1.0 = no overlap between coalesced requests).
    pub fn coalescing_factor(&self) -> f64 {
        if self.union_queries > 0 {
            self.queries_received as f64 / self.union_queries as f64
        } else {
            1.0
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let updates = if self.updates > 0 {
            format!(
                ", {} updates (+{} -{} edges, {:.1} ms delta apply, {} partitions touched)",
                self.updates,
                self.edges_inserted,
                self.edges_removed,
                self.delta_apply_seconds * 1e3,
                self.delta_touched_partitions,
            )
        } else {
            String::new()
        };
        format!(
            "{} requests in {} batches: {:.1} req/s, {:.2} ms mean latency, \
             coalescing {:.2}x, setup {:.1} ms ({:.1} ms partition build), \
             {:.2} simulated s{updates}",
            self.requests,
            self.batches,
            self.throughput_rps(),
            self.mean_latency_seconds() * 1e3,
            self.coalescing_factor(),
            self.setup_wall_seconds * 1e3,
            self.partition_build_seconds * 1e3,
            self.simulated_seconds,
        )
    }

    /// Renders the stats as one JSON line for benchmark tracking.
    pub fn to_bench_json(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"requests\":{},\"batches\":{},\
             \"serve_wall_seconds\":{:.6},\"setup_wall_seconds\":{:.6},\
             \"partition_build_seconds\":{:.6},\"throughput_rps\":{:.2},\
             \"mean_latency_ms\":{:.4},\"coalescing\":{:.3},\
             \"simulated_seconds\":{:.4},\"replication_factor\":{:.3},\
             \"updates\":{},\"edges_inserted\":{},\"edges_removed\":{},\
             \"delta_apply_seconds\":{:.6},\"delta_touched_partitions\":{}}}",
            self.requests,
            self.batches,
            self.serve_wall_seconds,
            self.setup_wall_seconds,
            self.partition_build_seconds,
            self.throughput_rps(),
            self.mean_latency_seconds() * 1e3,
            self.coalescing_factor(),
            self.simulated_seconds,
            self.replication_factor,
            self.updates,
            self.edges_inserted,
            self.edges_removed,
            self.delta_apply_seconds,
            self.delta_touched_partitions,
        )
    }

    /// Appends [`ServerStats::to_bench_json`] to the file named by the
    /// `BENCH_JSON` environment variable, if set (the same convention the
    /// criterion harness uses).
    pub fn write_bench_json(&self, name: &str) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{}", self.to_bench_json(name));
            }
        }
    }
}

/// Serves a stream of [`QuerySet`] requests against one prepared
/// predictor, coalescing batches into shared masked supersteps.
///
/// See the [module docs](self) for the model and an example.
pub struct Server<'a> {
    prepared: Box<dyn PreparedPredictor + 'a>,
    attributes: Option<&'a [Vec<u32>]>,
    seed: Option<u64>,
    stats: ServerStats,
}

impl<'a> Server<'a> {
    /// Prepares `predictor` for `graph`/`cluster` and wraps it in a
    /// server.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from [`Predictor::prepare`].
    pub fn new(
        predictor: &'a dyn Predictor,
        graph: &'a CsrGraph,
        cluster: &'a ClusterSpec,
    ) -> Result<Self, SnapleError> {
        let started = Instant::now();
        let prepared = predictor.prepare(&PrepareRequest::new(graph, cluster))?;
        let setup_wall_seconds = started.elapsed().as_secs_f64();
        let mut server = Server::from_prepared(prepared);
        server.stats.setup_wall_seconds = setup_wall_seconds;
        Ok(server)
    }

    /// Wraps an already-prepared predictor (e.g. one shared with other
    /// consumers of the deployment).
    pub fn from_prepared(prepared: Box<dyn PreparedPredictor + 'a>) -> Self {
        let setup = prepared.setup();
        let stats = ServerStats {
            setup_wall_seconds: setup.prepare_wall_seconds,
            partition_build_seconds: setup.partition_build_seconds,
            replication_factor: setup.replication_factor,
            ..ServerStats::default()
        };
        Server {
            prepared,
            attributes: None,
            seed: None,
            stats,
        }
    }

    /// Attaches per-vertex content attributes applied to every request.
    pub fn with_attributes(mut self, attributes: &'a [Vec<u32>]) -> Self {
        self.attributes = Some(attributes);
        self
    }

    /// Overrides the seed of every request's randomized parts.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Statistics of the stream served so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Applies a graph-update batch to the prepared deployment *in
    /// place*, between prediction batches — the streaming-ingestion half
    /// of the serve loop.
    ///
    /// The underlying [`PreparedPredictor::apply_delta`] re-routes only
    /// the vertex-cut partitions the delta touches, so an update costs
    /// O(delta), not the O(edges) of a fresh prepare. Prediction batches
    /// served after the update return rows bit-identical to a cold
    /// rebuild on the mutated graph.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying apply; on error the
    /// update is not counted.
    pub fn apply_update(&mut self, delta: &GraphDelta) -> Result<DeltaStats, SnapleError> {
        let applied = self.prepared.apply_delta(delta)?;
        self.stats.updates += 1;
        self.stats.edges_inserted += applied.inserted_edges;
        self.stats.edges_removed += applied.removed_edges;
        self.stats.delta_apply_seconds += applied.apply_wall_seconds;
        self.stats.delta_touched_partitions += applied.touched_partitions;
        Ok(applied)
    }

    /// Answers one request (a batch of one).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying execute.
    pub fn serve(&mut self, queries: &QuerySet) -> Result<Prediction, SnapleError> {
        let mut responses = self.serve_batch(std::slice::from_ref(queries))?;
        Ok(responses.pop().expect("one response per request"))
    }

    /// Answers a batch of concurrent requests through **one** shared
    /// masked superstep run.
    ///
    /// The requests' query sets are unioned into a single mask, executed
    /// once, and the resulting rows demultiplexed per request. Each
    /// response is bit-identical to executing its request individually:
    /// queried rows match, non-queried rows are empty. Every response
    /// carries the statistics of the *shared* run (the batch's cost is
    /// not attributed to individual requests).
    ///
    /// An empty batch returns no responses and executes nothing.
    ///
    /// Each response uses [`Prediction`]'s dense per-vertex row layout
    /// (so it compares 1:1 with one-shot results) and owns a copy of the
    /// shared run's statistics; for very large graphs with tiny requests
    /// prefer reading rows out of a single [`Server::serve`] response per
    /// wave instead of demultiplexing wide batches.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying execute; on error
    /// no request of the batch is counted as served.
    pub fn serve_batch(&mut self, requests: &[QuerySet]) -> Result<Vec<Prediction>, SnapleError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let started = Instant::now();
        let union: QuerySet = requests.iter().flat_map(QuerySet::iter).collect();
        let mut exec = ExecuteRequest::new().with_queries(&union);
        if let Some(attrs) = self.attributes {
            exec = exec.with_attributes(attrs);
        }
        if let Some(seed) = self.seed {
            exec = exec.with_seed(seed);
        }
        let shared = self.prepared.execute(&exec)?;

        let responses: Vec<Prediction> = requests
            .iter()
            .map(|request| {
                let mut rows: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); shared.num_vertices()];
                for q in request.iter() {
                    rows[q.index()] = shared.for_vertex(q).to_vec();
                }
                Prediction::from_parts(rows, shared.stats.clone())
            })
            .collect();

        self.stats.requests += requests.len();
        self.stats.batches += 1;
        self.stats.queries_received += requests.iter().map(QuerySet::len).sum::<usize>();
        self.stats.union_queries += union.len();
        self.stats.simulated_seconds += shared.simulated_seconds();
        self.stats.serve_wall_seconds += started.elapsed().as_secs_f64();
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NamedScore, SnapleConfig};
    use crate::predictor::Snaple;
    use crate::predictor_api::PredictRequest;
    use snaple_graph::gen::datasets;

    fn setup() -> (CsrGraph, ClusterSpec, Snaple) {
        let graph = datasets::GOWALLA.emulate(0.005, 3);
        let cluster = ClusterSpec::type_ii(4);
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .k(5)
                .klocal(Some(10)),
        );
        (graph, cluster, snaple)
    }

    #[test]
    fn batched_responses_are_bit_identical_to_individual_predicts() {
        let (graph, cluster, snaple) = setup();
        let requests: Vec<QuerySet> = (0..5)
            .map(|i| QuerySet::sample(graph.num_vertices(), 40, i))
            .collect();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let responses = server.serve_batch(&requests).unwrap();
        assert_eq!(responses.len(), requests.len());
        for (request, response) in requests.iter().zip(&responses) {
            let individual = Predictor::predict(
                &snaple,
                &PredictRequest::new(&graph, &cluster).with_queries(request),
            )
            .unwrap();
            for (u, preds) in response.iter() {
                if request.contains(u) {
                    assert_eq!(preds, individual.for_vertex(u), "queried row {u}");
                } else {
                    assert!(preds.is_empty(), "non-queried row {u} must stay empty");
                }
            }
        }
    }

    #[test]
    fn serve_and_serve_batch_agree() {
        let (graph, cluster, snaple) = setup();
        let q = QuerySet::sample(graph.num_vertices(), 30, 9);
        let mut batched = Server::new(&snaple, &graph, &cluster).unwrap();
        let from_batch = batched.serve_batch(std::slice::from_ref(&q)).unwrap();
        let mut single = Server::new(&snaple, &graph, &cluster).unwrap();
        let from_serve = single.serve(&q).unwrap();
        for (u, preds) in from_serve.iter() {
            assert_eq!(preds, from_batch[0].for_vertex(u));
        }
    }

    #[test]
    fn stats_track_the_stream_and_coalescing() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        assert!(server.stats().setup_wall_seconds > 0.0);
        assert!(server.stats().partition_build_seconds > 0.0);
        assert!(server.stats().replication_factor >= 1.0);
        assert_eq!(server.stats().requests, 0);

        // Two identical requests coalesce perfectly: the union is half
        // the received query volume.
        let q = QuerySet::sample(graph.num_vertices(), 50, 1);
        server.serve_batch(&[q.clone(), q.clone()]).unwrap();
        server.serve(&q).unwrap();
        let stats = server.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries_received, 150);
        assert_eq!(stats.union_queries, 100);
        assert!((stats.coalescing_factor() - 1.5).abs() < 1e-12);
        assert!(stats.throughput_rps() > 0.0);
        assert!(stats.mean_latency_seconds() > 0.0);
        assert!(stats.simulated_seconds > 0.0);
        let json = stats.to_bench_json("unit");
        assert!(json.starts_with("{\"name\":\"unit\""), "{json}");
        assert!(json.contains("\"requests\":3"), "{json}");
        assert!(!stats.summary().is_empty());
    }

    #[test]
    fn zero_request_streams_emit_finite_stats() {
        // A server that never served: every accessor must stay finite
        // (no 0/0 NaN) and the BENCH_JSON line must carry no NaN/inf.
        let stats = ServerStats::default();
        assert_eq!(stats.throughput_rps(), 0.0);
        assert_eq!(stats.mean_latency_seconds(), 0.0);
        assert_eq!(stats.coalescing_factor(), 1.0);
        let json = stats.to_bench_json("empty-stream");
        assert!(!json.contains("NaN") && !json.contains("nan"), "{json}");
        assert!(!json.contains("inf"), "{json}");
        assert!(!stats.summary().contains("NaN"), "{}", stats.summary());

        let (graph, cluster, snaple) = setup();
        let server = Server::new(&snaple, &graph, &cluster).unwrap();
        let json = server.stats().to_bench_json("prepared-only");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn batches_with_empty_union_masks_are_served_cleanly() {
        // Every request in the batch is empty: the union mask has no
        // active vertex, nothing is predicted, and the stats stay
        // finite (coalescing_factor guards its 0/0 case).
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let empties = vec![QuerySet::from_indices([]), QuerySet::from_indices([])];
        let responses = server.serve_batch(&empties).unwrap();
        assert_eq!(responses.len(), 2);
        assert!(responses.iter().all(|r| r.total_predictions() == 0));
        let stats = server.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.union_queries, 0);
        assert_eq!(stats.coalescing_factor(), 1.0, "0/0 must not be NaN");
        assert!(stats.throughput_rps().is_finite());
        let json = stats.to_bench_json("empty-union");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn zero_wall_second_accessors_do_not_divide_by_zero() {
        let stats = ServerStats {
            requests: 5,
            batches: 1,
            queries_received: 50,
            union_queries: 0,
            serve_wall_seconds: 0.0,
            ..ServerStats::default()
        };
        assert_eq!(stats.throughput_rps(), 0.0, "0-second stream is 0 rps");
        assert_eq!(stats.mean_latency_seconds(), 0.0);
        assert_eq!(stats.coalescing_factor(), 1.0);
        let json = stats.to_bench_json("zero-wall");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        assert!(json.contains("\"throughput_rps\":0.00"), "{json}");
    }

    #[test]
    fn empty_batches_and_empty_query_sets_are_fine() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        assert!(server.serve_batch(&[]).unwrap().is_empty());
        assert_eq!(server.stats().batches, 0);
        let empty = QuerySet::from_indices([]);
        let response = server.serve(&empty).unwrap();
        assert_eq!(response.total_predictions(), 0);
    }

    #[test]
    fn updates_interleave_with_predictions_and_match_cold_rebuilds() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let q = QuerySet::sample(graph.num_vertices(), 40, 2);
        server.serve(&q).unwrap();

        // Update batch: retract the first few edges, add a few new ones.
        let mut delta = GraphDelta::new();
        for (u, v) in graph.edges().take(4) {
            delta.remove(u.as_u32(), v.as_u32());
        }
        let n = graph.num_vertices() as u32;
        delta.insert(0, n - 1).insert(1, n - 2).insert(n - 1, 0);
        let applied = server.apply_update(&delta).unwrap();
        assert_eq!(applied.removed_edges, 4);
        assert!(applied.inserted_edges >= 2, "{applied:?}");

        // Post-update predictions must be bit-identical to a cold
        // prepare on the mutated graph.
        let mutated = graph.compact(&delta);
        let mut cold = Server::new(&snaple, &mutated, &cluster).unwrap();
        let after = server.serve(&q).unwrap();
        let expected = cold.serve(&q).unwrap();
        for (u, preds) in after.iter() {
            assert_eq!(preds, expected.for_vertex(u), "row {u}");
        }

        let stats = server.stats();
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.edges_removed, 4);
        assert_eq!(stats.edges_inserted, applied.inserted_edges);
        assert!(stats.delta_apply_seconds > 0.0);
        assert!(stats.delta_touched_partitions >= 1);
        assert!(stats.summary().contains("1 updates"), "{}", stats.summary());
        let json = stats.to_bench_json("upd");
        assert!(json.contains("\"updates\":1"), "{json}");
        // Per-run stats surface the deployment's cumulative delta costs.
        assert!(after.stats.delta_apply_seconds > 0.0);
        assert_eq!(expected.stats.delta_apply_seconds, 0.0);
    }

    #[test]
    fn streams_without_updates_report_zero_update_stats() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        server
            .serve(&QuerySet::sample(graph.num_vertices(), 10, 0))
            .unwrap();
        let stats = server.stats();
        assert_eq!(stats.updates, 0);
        assert_eq!(stats.delta_apply_seconds, 0.0);
        assert!(!stats.summary().contains("updates"), "{}", stats.summary());
    }

    #[test]
    fn out_of_range_requests_fail_without_counting() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let bad = QuerySet::from_indices([graph.num_vertices() as u32 + 10]);
        assert!(matches!(
            server.serve(&bad),
            Err(SnapleError::InvalidConfig(_))
        ));
        assert_eq!(server.stats().requests, 0);
    }
}
