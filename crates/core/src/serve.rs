//! The serve layer: answer a *stream* of query-set requests against one
//! prepared predictor.
//!
//! A production "who to follow" deployment receives many small requests
//! per second against the same graph. Two amortizations make that cheap
//! here:
//!
//! 1. **Prepare once** — the [`Server`] holds a
//!    [`PreparedPredictor`], so the O(edges) partition build and all
//!    backend precomputation are paid a single time for the whole stream
//!    (see [`Predictor::prepare`]).
//! 2. **Coalesce requests** — [`Server::serve_batch`] unions the query
//!    sets of concurrent requests into one active-vertex mask, runs the
//!    masked supersteps once, and demultiplexes the rows back per
//!    request. Because masked runs are *exact* (each queried row is
//!    bit-identical to an all-vertices run), the demultiplexed rows are
//!    bit-identical to executing every request individually — the batch
//!    only shares the fixed per-superstep costs.
//!
//! The served graph does not have to stay frozen: update batches
//! ([`Server::apply_update`]) interleave with prediction batches, folding
//! edge insertions/removals into the prepared deployment in place — a
//! per-delta cost proportional to the delta, not to the graph — while
//! every subsequent prediction stays bit-identical to a cold rebuild on
//! the mutated graph.
//!
//! # Sequential vs concurrent serving
//!
//! This module's [`Server`] is **sequential**: one caller thread drives
//! batches and updates in program order through `&mut self`, and an
//! update blocks the stream while it applies in place. That is the right
//! tool for replaying a recorded stream, for benchmarks that want
//! deterministic batch boundaries, and for single-tenant embedding. For
//! a *multi-threaded* request load — many callers, updates that must not
//! stall reads — use
//! [`ConcurrentServer`](crate::concurrent::ConcurrentServer): a pool of
//! workers executes against one `Arc`-shared snapshot, a bounded queue
//! applies backpressure, and updates publish epoch forks instead of
//! mutating in place (see the [concurrent module
//! docs](crate::concurrent)). Both layers produce bit-identical rows for
//! the same requests and seed.
//!
//! Either way, [`ServerStats`] tracks the stream: throughput, coalescing,
//! per-request latency percentiles from a fixed-bucket
//! [`LatencyHistogram`] (no per-request allocation), and cumulative
//! update costs — all exportable as one `BENCH_JSON` line.
//!
//! # Restartable serving
//!
//! Attach a [`snaple_store::Durability`] store
//! ([`Server::attach_durability`]) and the server becomes restartable:
//! every [`Server::apply_update`] appends the delta to an fsync'd,
//! checksummed commitlog *before* applying it (write-ahead — a logging
//! failure rejects the update and leaves serving state unchanged), and
//! every K logged deltas the store checkpoints a compacted snapshot of
//! the graph. After a crash, [`snaple_store::Durability::open`] recovers
//! the newest valid snapshot (falling back to older ones past checksum
//! failures) plus the commitlog tail, handing back replay deltas that
//! reproduce the pre-crash graph **bit-identically**. The recovery
//! protocol:
//!
//! 1. `Durability::open(dir, base, config, opts)` → recovered graph +
//!    replay deltas + a [`snaple_store::RecoveryReport`].
//! 2. Prepare the predictor on the *recovered* graph, wrap it in a
//!    `Server`, and apply the replay deltas through
//!    [`Server::apply_update`] — **before** attaching, so they are not
//!    re-logged.
//! 3. [`Server::attach_durability`] — subsequent updates persist.
//!
//! With no store attached the durability path is a `None` check — the
//! ephemeral serve loop is unchanged. The concurrent layer persists the
//! same way via
//! [`ConcurrentServer::run_prepared_durable`](crate::concurrent::ConcurrentServer::run_prepared_durable),
//! where the commitlog append is the serialization point before each
//! epoch swap.
//!
//! ```
//! use snaple_core::serve::Server;
//! use snaple_core::{QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let mut server = Server::new(&snaple, &graph, &cluster)?;
//! // Four concurrent user requests, answered in one shared superstep run:
//! let requests: Vec<QuerySet> = (0..4)
//!     .map(|i| QuerySet::sample(graph.num_vertices(), 25, i))
//!     .collect();
//! let responses = server.serve_batch(&requests)?;
//! assert_eq!(responses.len(), 4);
//! println!("{}", server.stats().summary());
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

use std::time::Instant;

use snaple_gas::{ClusterSpec, DeltaStats};
use snaple_graph::{GraphDelta, GraphStore, VertexId};
use snaple_store::{Durability, DurabilityStats};

use crate::error::SnapleError;
use crate::predictor::Prediction;
use crate::predictor_api::{
    ExecuteRequest, Predictor, PrepareRequest, PreparedPredictor, QuerySet,
};

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^{i+1})` microseconds, so 40 buckets span 1 µs to ~18 minutes.
const LATENCY_BUCKETS: usize = 40;

/// A fixed-bucket latency histogram: power-of-two microsecond buckets,
/// recorded with **no per-request allocation** (one array increment), so
/// the serving hot path can track per-request latency percentiles at any
/// request rate.
///
/// Percentiles are bucket-resolution approximations: the reported value
/// is the geometric midpoint of the bucket containing the requested
/// quantile (within ~±41% of the true value — plenty for p50/p95/p99
/// dashboards distinguishing microseconds from milliseconds from
/// seconds).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; LATENCY_BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation (clamped into the bucket range; negative
    /// and sub-microsecond values land in the first bucket).
    pub fn record(&mut self, seconds: f64) {
        let micros = (seconds * 1e6).max(0.0) as u64;
        let idx = (63 - micros.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Folds another histogram into this one (used to aggregate per-worker
    /// and per-shard recordings).
    ///
    /// Buckets are positional and every histogram uses the same
    /// power-of-two-microsecond bucket boundaries, so merging is exact:
    /// `count()` adds up and every quantile of the merge equals the
    /// quantile of the pooled observations (at bucket resolution).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The raw per-bucket counts (bucket `i` covers `[2^i, 2^{i+1})`
    /// microseconds) — the serializable wire form of the histogram.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a histogram from serialized [`bucket_counts`]
    /// (extra trailing buckets are dropped, missing ones are zero), the
    /// inverse of [`bucket_counts`] used by the shard wire codec.
    ///
    /// [`bucket_counts`]: LatencyHistogram::bucket_counts
    pub fn from_bucket_counts(counts: &[u64]) -> Self {
        let mut h = LatencyHistogram::new();
        for (dst, &src) in h.counts.iter_mut().zip(counts) {
            *dst = src;
            h.total += src;
        }
        h
    }

    /// The latency in seconds at quantile `q` (`0.0..=1.0`); `0.0` while
    /// the histogram is empty — the accessor never divides by zero, so an
    /// update-only or unserved stream emits finite numbers.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^{i+1}) µs, in seconds.
                return 2f64.powi(i as i32) * std::f64::consts::SQRT_2 / 1e6;
            }
        }
        unreachable!("total > 0 implies a bucket holds the rank")
    }

    /// Median request latency in seconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile request latency in seconds.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile request latency in seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Aggregate statistics of a request stream served by a [`Server`] or a
/// [`ConcurrentServer`](crate::concurrent::ConcurrentServer).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Requests answered.
    pub requests: usize,
    /// Shared superstep runs executed (one per served batch).
    pub batches: usize,
    /// Sum of per-request query counts, as received.
    pub queries_received: usize,
    /// Sum of the executed union-mask sizes — smaller than
    /// `queries_received` whenever coalescing deduplicated overlapping
    /// queries.
    pub union_queries: usize,
    /// Simulated cluster seconds across all shared runs.
    pub simulated_seconds: f64,
    /// Host wall-clock seconds spent serving (excludes setup).
    pub serve_wall_seconds: f64,
    /// Host wall-clock seconds the one-time `prepare` took.
    pub setup_wall_seconds: f64,
    /// Host wall-clock seconds of the one-time partition build within
    /// setup.
    pub partition_build_seconds: f64,
    /// Replication factor of the prepared partition.
    pub replication_factor: f64,
    /// Graph-update (delta) requests applied to the stream's deployment.
    pub updates: usize,
    /// Edge insertions applied across all updates.
    pub edges_inserted: usize,
    /// Edge removals applied across all updates.
    pub edges_removed: usize,
    /// Host wall-clock seconds spent applying deltas in place — the cost
    /// the incremental path pays *instead of* a full re-prepare per
    /// update.
    pub delta_apply_seconds: f64,
    /// Cumulative count of vertex-cut partitions the updates touched.
    pub delta_touched_partitions: usize,
    /// Per-request latency histogram (submission-to-response for the
    /// concurrent server, batch wall time for the sequential one).
    pub latency: LatencyHistogram,
    /// Worker threads that served the stream (`0` for the sequential
    /// in-thread [`Server`]).
    pub workers: usize,
    /// Durability counters and the recovery report, when the server
    /// persists into a data dir (`None` = ephemeral serving, zero
    /// overhead). Not carried over the shard wire — shards never own a
    /// data dir.
    pub durability: Option<DurabilityStats>,
}

impl ServerStats {
    /// Requests answered per host wall-clock second of serving.
    pub fn throughput_rps(&self) -> f64 {
        if self.serve_wall_seconds > 0.0 {
            self.requests as f64 / self.serve_wall_seconds
        } else {
            0.0
        }
    }

    /// Mean host latency per request in seconds (batch cost split evenly
    /// across its requests).
    pub fn mean_latency_seconds(&self) -> f64 {
        if self.requests > 0 {
            self.serve_wall_seconds / self.requests as f64
        } else {
            0.0
        }
    }

    /// Folds the statistics of a runtime that ran **in parallel** with
    /// this one — a shard of a
    /// [`ShardRouter`](crate::shard::ShardRouter) deployment — into this
    /// aggregate.
    ///
    /// Throughput counters (requests, batches, queries, updates, edge
    /// counts, worker threads) add up; wall-clock and simulated durations
    /// take the **maximum** because concurrent runtimes overlap in time —
    /// summing them would double-count the wall. Deployment-shape gauges
    /// (replication factor, partitions touched by deltas) also take the
    /// maximum: each shard holds a full snapshot, so the per-shard values
    /// describe the same deployment. Latency histograms merge exactly
    /// ([`LatencyHistogram::merge`]).
    pub fn merge_parallel(&mut self, other: &ServerStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.queries_received += other.queries_received;
        self.union_queries += other.union_queries;
        self.simulated_seconds = self.simulated_seconds.max(other.simulated_seconds);
        self.serve_wall_seconds = self.serve_wall_seconds.max(other.serve_wall_seconds);
        self.setup_wall_seconds = self.setup_wall_seconds.max(other.setup_wall_seconds);
        self.partition_build_seconds = self
            .partition_build_seconds
            .max(other.partition_build_seconds);
        self.replication_factor = self.replication_factor.max(other.replication_factor);
        self.updates += other.updates;
        self.edges_inserted += other.edges_inserted;
        self.edges_removed += other.edges_removed;
        self.delta_apply_seconds = self.delta_apply_seconds.max(other.delta_apply_seconds);
        self.delta_touched_partitions = self
            .delta_touched_partitions
            .max(other.delta_touched_partitions);
        self.latency.merge(&other.latency);
        self.workers += other.workers;
        match (&mut self.durability, &other.durability) {
            (Some(mine), Some(theirs)) => {
                mine.logged_deltas += theirs.logged_deltas;
                mine.logged_bytes += theirs.logged_bytes;
                mine.fsyncs += theirs.fsyncs;
                mine.snapshots_written += theirs.snapshots_written;
                mine.log_wall_seconds = mine.log_wall_seconds.max(theirs.log_wall_seconds);
                mine.snapshot_wall_seconds =
                    mine.snapshot_wall_seconds.max(theirs.snapshot_wall_seconds);
                if mine.recovery.is_none() {
                    mine.recovery = theirs.recovery.clone();
                }
            }
            (None, Some(theirs)) => self.durability = Some(theirs.clone()),
            _ => {}
        }
    }

    /// How many received queries each executed union query stood for
    /// (1.0 = no overlap between coalesced requests).
    ///
    /// Guarded against the zero-denominator stream shapes BENCH_JSON must
    /// never see as `NaN`/`inf`: update-only streams and all-empty
    /// batches execute zero union queries and report `1.0` (no
    /// coalescing), mirroring [`ServerStats::throughput_rps`] and
    /// [`ServerStats::mean_latency_seconds`] reporting `0.0` on their
    /// zero denominators.
    pub fn coalescing_factor(&self) -> f64 {
        if self.union_queries > 0 {
            self.queries_received as f64 / self.union_queries as f64
        } else {
            1.0
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let updates = if self.updates > 0 {
            format!(
                ", {} updates (+{} -{} edges, {:.1} ms delta apply, {} partitions touched)",
                self.updates,
                self.edges_inserted,
                self.edges_removed,
                self.delta_apply_seconds * 1e3,
                self.delta_touched_partitions,
            )
        } else {
            String::new()
        };
        let workers = if self.workers > 0 {
            format!(" on {} workers", self.workers)
        } else {
            String::new()
        };
        let durability = match &self.durability {
            Some(d) => format!(
                ", durable ({} logged deltas, {} fsyncs, {} snapshots)",
                d.logged_deltas, d.fsyncs, d.snapshots_written,
            ),
            None => String::new(),
        };
        format!(
            "{} requests in {} batches{workers}: {:.1} req/s, {:.2} ms mean latency \
             (p50/p95/p99 {:.2}/{:.2}/{:.2} ms), \
             coalescing {:.2}x, setup {:.1} ms ({:.1} ms partition build), \
             {:.2} simulated s{updates}{durability}",
            self.requests,
            self.batches,
            self.throughput_rps(),
            self.mean_latency_seconds() * 1e3,
            self.latency.p50() * 1e3,
            self.latency.p95() * 1e3,
            self.latency.p99() * 1e3,
            self.coalescing_factor(),
            self.setup_wall_seconds * 1e3,
            self.partition_build_seconds * 1e3,
            self.simulated_seconds,
        )
    }

    /// Renders the stats as one JSON line for benchmark tracking.
    pub fn to_bench_json(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"requests\":{},\"batches\":{},\"workers\":{},\
             \"serve_wall_seconds\":{:.6},\"setup_wall_seconds\":{:.6},\
             \"partition_build_seconds\":{:.6},\"throughput_rps\":{:.2},\
             \"mean_latency_ms\":{:.4},\"latency_p50_ms\":{:.4},\
             \"latency_p95_ms\":{:.4},\"latency_p99_ms\":{:.4},\
             \"coalescing\":{:.3},\
             \"simulated_seconds\":{:.4},\"replication_factor\":{:.3},\
             \"updates\":{},\"edges_inserted\":{},\"edges_removed\":{},\
             \"delta_apply_seconds\":{:.6},\"delta_touched_partitions\":{}}}",
            self.requests,
            self.batches,
            self.workers,
            self.serve_wall_seconds,
            self.setup_wall_seconds,
            self.partition_build_seconds,
            self.throughput_rps(),
            self.mean_latency_seconds() * 1e3,
            self.latency.p50() * 1e3,
            self.latency.p95() * 1e3,
            self.latency.p99() * 1e3,
            self.coalescing_factor(),
            self.simulated_seconds,
            self.replication_factor,
            self.updates,
            self.edges_inserted,
            self.edges_removed,
            self.delta_apply_seconds,
            self.delta_touched_partitions,
        )
    }

    /// Appends [`ServerStats::to_bench_json`] to the file named by the
    /// `BENCH_JSON` environment variable, if set (the same convention the
    /// criterion harness uses).
    pub fn write_bench_json(&self, name: &str) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{}", self.to_bench_json(name));
            }
        }
    }
}

/// Serves a stream of [`QuerySet`] requests against one prepared
/// predictor, coalescing batches into shared masked supersteps.
///
/// See the [module docs](self) for the model and an example.
pub struct Server<'a> {
    prepared: Box<dyn PreparedPredictor + 'a>,
    attributes: Option<&'a [Vec<u32>]>,
    seed: Option<u64>,
    stats: ServerStats,
    durability: Option<Durability>,
}

impl<'a> Server<'a> {
    /// Prepares `predictor` for `graph`/`cluster` and wraps it in a
    /// server.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from [`Predictor::prepare`].
    pub fn new(
        predictor: &'a dyn Predictor,
        graph: &'a dyn GraphStore,
        cluster: &'a ClusterSpec,
    ) -> Result<Self, SnapleError> {
        let started = Instant::now();
        let prepared = predictor.prepare(&PrepareRequest::new(graph, cluster))?;
        let setup_wall_seconds = started.elapsed().as_secs_f64();
        let mut server = Server::from_prepared(prepared);
        server.stats.setup_wall_seconds = setup_wall_seconds;
        Ok(server)
    }

    /// Wraps an already-prepared predictor (e.g. one shared with other
    /// consumers of the deployment).
    pub fn from_prepared(prepared: Box<dyn PreparedPredictor + 'a>) -> Self {
        let setup = prepared.setup();
        let stats = ServerStats {
            setup_wall_seconds: setup.prepare_wall_seconds,
            partition_build_seconds: setup.partition_build_seconds,
            replication_factor: setup.replication_factor,
            ..ServerStats::default()
        };
        Server {
            prepared,
            attributes: None,
            seed: None,
            stats,
            durability: None,
        }
    }

    /// Attaches an opened [`Durability`] store: every subsequent
    /// [`Server::apply_update`] is persisted (commitlog append, then
    /// apply — write-ahead) and checkpointed at the store's cadence.
    ///
    /// Replay deltas recovered at open time must be applied *before*
    /// attaching, so they are not re-logged — see the
    /// [module docs](self#restartable-serving).
    pub fn attach_durability(&mut self, durability: Durability) {
        self.stats.durability = Some(durability.stats().clone());
        self.durability = Some(durability);
    }

    /// The attached durability store, if any.
    pub fn durability(&self) -> Option<&Durability> {
        self.durability.as_ref()
    }

    /// Forces an fsync of the commitlog (a no-op when ephemeral or when
    /// the fsync policy is `always`).
    ///
    /// # Errors
    ///
    /// Surfaces the flush failure as [`SnapleError::Durability`].
    pub fn sync_durability(&mut self) -> Result<(), SnapleError> {
        if let Some(durable) = self.durability.as_mut() {
            durable.sync().map_err(|e| SnapleError::Durability {
                message: e.to_string(),
            })?;
            self.stats.durability = Some(durable.stats().clone());
        }
        Ok(())
    }

    /// Attaches per-vertex content attributes applied to every request.
    pub fn with_attributes(mut self, attributes: &'a [Vec<u32>]) -> Self {
        self.attributes = Some(attributes);
        self
    }

    /// Overrides the seed of every request's randomized parts.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Statistics of the stream served so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Applies a graph-update batch to the prepared deployment *in
    /// place*, between prediction batches — the streaming-ingestion half
    /// of the serve loop.
    ///
    /// The underlying [`PreparedPredictor::apply_delta`] re-routes only
    /// the vertex-cut partitions the delta touches, so an update costs
    /// O(delta), not the O(edges) of a fresh prepare. Prediction batches
    /// served after the update return rows bit-identical to a cold
    /// rebuild on the mutated graph.
    ///
    /// When a [`Durability`] store is attached, the delta is appended to
    /// the commitlog *before* it is applied (write-ahead): a logging
    /// failure rejects the update with [`SnapleError::Durability`] and
    /// leaves the serving state unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying apply; on error the
    /// update is not counted.
    pub fn apply_update(&mut self, delta: &GraphDelta) -> Result<DeltaStats, SnapleError> {
        if let Some(durable) = self.durability.as_mut() {
            durable.record(delta).map_err(|e| SnapleError::Durability {
                message: e.to_string(),
            })?;
        }
        let applied = self.prepared.apply_delta(delta)?;
        self.stats.updates += 1;
        self.stats.edges_inserted += applied.inserted_edges;
        self.stats.edges_removed += applied.removed_edges;
        self.stats.delta_apply_seconds += applied.apply_wall_seconds;
        self.stats.delta_touched_partitions += applied.touched_partitions;
        if let Some(durable) = self.durability.as_ref() {
            self.stats.durability = Some(durable.stats().clone());
        }
        Ok(applied)
    }

    /// Answers one request (a batch of one).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying execute.
    pub fn serve(&mut self, queries: &QuerySet) -> Result<Prediction, SnapleError> {
        let mut responses = self.serve_batch(std::slice::from_ref(queries))?;
        Ok(responses.pop().expect("one response per request"))
    }

    /// Answers a batch of concurrent requests through **one** shared
    /// masked superstep run.
    ///
    /// The requests' query sets are unioned into a single mask, executed
    /// once, and the resulting rows demultiplexed per request. Each
    /// response is bit-identical to executing its request individually:
    /// queried rows match, non-queried rows are empty. Every response
    /// carries the statistics of the *shared* run (the batch's cost is
    /// not attributed to individual requests).
    ///
    /// An empty batch returns no responses and executes nothing.
    ///
    /// Each response uses [`Prediction`]'s dense per-vertex row layout
    /// (so it compares 1:1 with one-shot results) and owns a copy of the
    /// shared run's statistics; for very large graphs with tiny requests
    /// prefer reading rows out of a single [`Server::serve`] response per
    /// wave instead of demultiplexing wide batches.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying execute; on error
    /// no request of the batch is counted as served.
    pub fn serve_batch(&mut self, requests: &[QuerySet]) -> Result<Vec<Prediction>, SnapleError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let started = Instant::now();
        let union: QuerySet = requests.iter().flat_map(QuerySet::iter).collect();
        let mut exec = ExecuteRequest::new().with_queries(&union);
        if let Some(attrs) = self.attributes {
            exec = exec.with_attributes(attrs);
        }
        if let Some(seed) = self.seed {
            exec = exec.with_seed(seed);
        }
        let shared = self.prepared.execute(&exec)?;
        let responses = demultiplex(&shared, requests);

        // Stats are recorded only after a successful run: a failing batch
        // returned above and left every counter (and the latency
        // histogram) untouched, so BENCH_JSON never counts work that
        // produced no responses.
        let elapsed = started.elapsed().as_secs_f64();
        self.stats.requests += requests.len();
        self.stats.batches += 1;
        self.stats.queries_received += requests.iter().map(QuerySet::len).sum::<usize>();
        self.stats.union_queries += union.len();
        self.stats.simulated_seconds += shared.simulated_seconds();
        self.stats.serve_wall_seconds += elapsed;
        for _ in requests {
            // Every request of the batch waited for the whole shared run.
            self.stats.latency.record(elapsed);
        }
        Ok(responses)
    }
}

/// Demultiplexes one shared coalesced run back into per-request
/// [`Prediction`]s: each response carries exactly its request's rows (all
/// other rows empty) plus a copy of the shared run's statistics. Shared
/// by the sequential [`Server`] and the concurrent worker pool so both
/// layers return byte-identical responses for the same batch.
pub(crate) fn demultiplex(shared: &Prediction, requests: &[QuerySet]) -> Vec<Prediction> {
    requests
        .iter()
        .map(|request| {
            let mut rows: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); shared.num_vertices()];
            for q in request.iter() {
                rows[q.index()] = shared.for_vertex(q).to_vec();
            }
            Prediction::from_parts(rows, shared.stats.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NamedScore, SnapleConfig};
    use crate::predictor::Snaple;
    use crate::predictor_api::PredictRequest;
    use snaple_graph::gen::datasets;
    use snaple_graph::CsrGraph;

    fn setup() -> (CsrGraph, ClusterSpec, Snaple) {
        let graph = datasets::GOWALLA.emulate(0.005, 3);
        let cluster = ClusterSpec::type_ii(4);
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .k(5)
                .klocal(Some(10)),
        );
        (graph, cluster, snaple)
    }

    #[test]
    fn histogram_merge_aligns_buckets_positionally() {
        // Observations that land in three distinct power-of-two buckets:
        // 3 µs → bucket 1, 100 µs → bucket 6, 5 ms → bucket 12.
        let mut a = LatencyHistogram::new();
        a.record(3e-6);
        a.record(100e-6);
        let mut b = LatencyHistogram::new();
        b.record(3e-6);
        b.record(5e-3);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        // The merge is positional: bucket-by-bucket sums, identical to
        // recording the pooled observations directly.
        let mut pooled = LatencyHistogram::new();
        for s in [3e-6, 100e-6, 3e-6, 5e-3] {
            pooled.record(s);
        }
        assert_eq!(merged.bucket_counts(), pooled.bucket_counts());
        assert_eq!(merged, pooled);
    }

    #[test]
    fn histogram_quantiles_after_merge_match_pooled_recording() {
        // 90 fast observations in one histogram, 10 slow in another: the
        // merged p50 must sit in the fast bucket and p99 in the slow one,
        // exactly as if a single histogram had seen all 100.
        let mut fast = LatencyHistogram::new();
        for _ in 0..90 {
            fast.record(10e-6);
        }
        let mut slow = LatencyHistogram::new();
        for _ in 0..10 {
            slow.record(50e-3);
        }
        let mut merged = fast.clone();
        merged.merge(&slow);
        let mut pooled = LatencyHistogram::new();
        for _ in 0..90 {
            pooled.record(10e-6);
        }
        for _ in 0..10 {
            pooled.record(50e-3);
        }
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), pooled.quantile(q), "q={q}");
        }
        assert!(merged.p50() < 1e-3, "p50 must stay in the fast bucket");
        assert!(merged.p99() > 1e-2, "p99 must reach the slow bucket");
        // Merging an empty histogram is the identity.
        let before = merged.clone();
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn histogram_bucket_counts_round_trip() {
        let mut h = LatencyHistogram::new();
        for s in [1e-6, 3e-6, 1e-4, 2e-2, 7.0] {
            h.record(s);
        }
        let rebuilt = LatencyHistogram::from_bucket_counts(h.bucket_counts());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.count(), 5);
        assert_eq!(LatencyHistogram::from_bucket_counts(&[]).count(), 0);
    }

    #[test]
    fn server_stats_parallel_merge_sums_counters_and_maxes_walls() {
        let mut a = ServerStats {
            requests: 10,
            batches: 4,
            queries_received: 100,
            union_queries: 90,
            simulated_seconds: 2.0,
            serve_wall_seconds: 1.0,
            setup_wall_seconds: 0.5,
            partition_build_seconds: 0.4,
            replication_factor: 1.5,
            updates: 2,
            edges_inserted: 20,
            edges_removed: 5,
            delta_apply_seconds: 0.1,
            delta_touched_partitions: 3,
            workers: 1,
            ..ServerStats::default()
        };
        a.latency.record(10e-6);
        let mut b = ServerStats {
            requests: 6,
            batches: 6,
            queries_received: 60,
            union_queries: 60,
            simulated_seconds: 3.0,
            serve_wall_seconds: 0.8,
            setup_wall_seconds: 0.7,
            partition_build_seconds: 0.2,
            replication_factor: 1.2,
            updates: 2,
            edges_inserted: 7,
            edges_removed: 1,
            delta_apply_seconds: 0.3,
            delta_touched_partitions: 8,
            workers: 1,
            ..ServerStats::default()
        };
        b.latency.record(50e-3);
        a.merge_parallel(&b);
        assert_eq!(a.requests, 16);
        assert_eq!(a.batches, 10);
        assert_eq!(a.queries_received, 160);
        assert_eq!(a.union_queries, 150);
        assert_eq!(a.simulated_seconds, 3.0); // parallel: critical path
        assert_eq!(a.serve_wall_seconds, 1.0);
        assert_eq!(a.setup_wall_seconds, 0.7);
        assert_eq!(a.partition_build_seconds, 0.4);
        assert_eq!(a.replication_factor, 1.5);
        assert_eq!(a.updates, 4);
        assert_eq!(a.edges_inserted, 27);
        assert_eq!(a.edges_removed, 6);
        assert_eq!(a.delta_apply_seconds, 0.3);
        assert_eq!(a.delta_touched_partitions, 8);
        assert_eq!(a.workers, 2);
        assert_eq!(a.latency.count(), 2);
    }

    #[test]
    fn batched_responses_are_bit_identical_to_individual_predicts() {
        let (graph, cluster, snaple) = setup();
        let requests: Vec<QuerySet> = (0..5)
            .map(|i| QuerySet::sample(graph.num_vertices(), 40, i))
            .collect();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let responses = server.serve_batch(&requests).unwrap();
        assert_eq!(responses.len(), requests.len());
        for (request, response) in requests.iter().zip(&responses) {
            let individual = Predictor::predict(
                &snaple,
                &PredictRequest::new(&graph, &cluster).with_queries(request),
            )
            .unwrap();
            for (u, preds) in response.iter() {
                if request.contains(u) {
                    assert_eq!(preds, individual.for_vertex(u), "queried row {u}");
                } else {
                    assert!(preds.is_empty(), "non-queried row {u} must stay empty");
                }
            }
        }
    }

    #[test]
    fn serve_and_serve_batch_agree() {
        let (graph, cluster, snaple) = setup();
        let q = QuerySet::sample(graph.num_vertices(), 30, 9);
        let mut batched = Server::new(&snaple, &graph, &cluster).unwrap();
        let from_batch = batched.serve_batch(std::slice::from_ref(&q)).unwrap();
        let mut single = Server::new(&snaple, &graph, &cluster).unwrap();
        let from_serve = single.serve(&q).unwrap();
        for (u, preds) in from_serve.iter() {
            assert_eq!(preds, from_batch[0].for_vertex(u));
        }
    }

    #[test]
    fn stats_track_the_stream_and_coalescing() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        assert!(server.stats().setup_wall_seconds > 0.0);
        assert!(server.stats().partition_build_seconds > 0.0);
        assert!(server.stats().replication_factor >= 1.0);
        assert_eq!(server.stats().requests, 0);

        // Two identical requests coalesce perfectly: the union is half
        // the received query volume.
        let q = QuerySet::sample(graph.num_vertices(), 50, 1);
        server.serve_batch(&[q.clone(), q.clone()]).unwrap();
        server.serve(&q).unwrap();
        let stats = server.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries_received, 150);
        assert_eq!(stats.union_queries, 100);
        assert!((stats.coalescing_factor() - 1.5).abs() < 1e-12);
        assert!(stats.throughput_rps() > 0.0);
        assert!(stats.mean_latency_seconds() > 0.0);
        assert!(stats.simulated_seconds > 0.0);
        let json = stats.to_bench_json("unit");
        assert!(json.starts_with("{\"name\":\"unit\""), "{json}");
        assert!(json.contains("\"requests\":3"), "{json}");
        assert!(!stats.summary().is_empty());
    }

    #[test]
    fn zero_request_streams_emit_finite_stats() {
        // A server that never served: every accessor must stay finite
        // (no 0/0 NaN) and the BENCH_JSON line must carry no NaN/inf.
        let stats = ServerStats::default();
        assert_eq!(stats.throughput_rps(), 0.0);
        assert_eq!(stats.mean_latency_seconds(), 0.0);
        assert_eq!(stats.coalescing_factor(), 1.0);
        let json = stats.to_bench_json("empty-stream");
        assert!(!json.contains("NaN") && !json.contains("nan"), "{json}");
        assert!(!json.contains("inf"), "{json}");
        assert!(!stats.summary().contains("NaN"), "{}", stats.summary());

        let (graph, cluster, snaple) = setup();
        let server = Server::new(&snaple, &graph, &cluster).unwrap();
        let json = server.stats().to_bench_json("prepared-only");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn batches_with_empty_union_masks_are_served_cleanly() {
        // Every request in the batch is empty: the union mask has no
        // active vertex, nothing is predicted, and the stats stay
        // finite (coalescing_factor guards its 0/0 case).
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let empties = vec![QuerySet::from_indices([]), QuerySet::from_indices([])];
        let responses = server.serve_batch(&empties).unwrap();
        assert_eq!(responses.len(), 2);
        assert!(responses.iter().all(|r| r.total_predictions() == 0));
        let stats = server.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.union_queries, 0);
        assert_eq!(stats.coalescing_factor(), 1.0, "0/0 must not be NaN");
        assert!(stats.throughput_rps().is_finite());
        let json = stats.to_bench_json("empty-union");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn zero_wall_second_accessors_do_not_divide_by_zero() {
        let stats = ServerStats {
            requests: 5,
            batches: 1,
            queries_received: 50,
            union_queries: 0,
            serve_wall_seconds: 0.0,
            ..ServerStats::default()
        };
        assert_eq!(stats.throughput_rps(), 0.0, "0-second stream is 0 rps");
        assert_eq!(stats.mean_latency_seconds(), 0.0);
        assert_eq!(stats.coalescing_factor(), 1.0);
        let json = stats.to_bench_json("zero-wall");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        assert!(json.contains("\"throughput_rps\":0.00"), "{json}");
    }

    #[test]
    fn empty_batches_and_empty_query_sets_are_fine() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        assert!(server.serve_batch(&[]).unwrap().is_empty());
        assert_eq!(server.stats().batches, 0);
        let empty = QuerySet::from_indices([]);
        let response = server.serve(&empty).unwrap();
        assert_eq!(response.total_predictions(), 0);
    }

    #[test]
    fn updates_interleave_with_predictions_and_match_cold_rebuilds() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let q = QuerySet::sample(graph.num_vertices(), 40, 2);
        server.serve(&q).unwrap();

        // Update batch: retract the first few edges, add a few new ones.
        let mut delta = GraphDelta::new();
        for (u, v) in graph.edges().take(4) {
            delta.remove(u.as_u32(), v.as_u32());
        }
        let n = graph.num_vertices() as u32;
        delta.insert(0, n - 1).insert(1, n - 2).insert(n - 1, 0);
        let applied = server.apply_update(&delta).unwrap();
        assert_eq!(applied.removed_edges, 4);
        assert!(applied.inserted_edges >= 2, "{applied:?}");

        // Post-update predictions must be bit-identical to a cold
        // prepare on the mutated graph.
        let mutated = graph.compact(&delta);
        let mut cold = Server::new(&snaple, &mutated, &cluster).unwrap();
        let after = server.serve(&q).unwrap();
        let expected = cold.serve(&q).unwrap();
        for (u, preds) in after.iter() {
            assert_eq!(preds, expected.for_vertex(u), "row {u}");
        }

        let stats = server.stats();
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.edges_removed, 4);
        assert_eq!(stats.edges_inserted, applied.inserted_edges);
        assert!(stats.delta_apply_seconds > 0.0);
        assert!(stats.delta_touched_partitions >= 1);
        assert!(stats.summary().contains("1 updates"), "{}", stats.summary());
        let json = stats.to_bench_json("upd");
        assert!(json.contains("\"updates\":1"), "{json}");
        // Per-run stats surface the deployment's cumulative delta costs.
        assert!(after.stats.delta_apply_seconds > 0.0);
        assert_eq!(expected.stats.delta_apply_seconds, 0.0);
    }

    #[test]
    fn streams_without_updates_report_zero_update_stats() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        server
            .serve(&QuerySet::sample(graph.num_vertices(), 10, 0))
            .unwrap();
        let stats = server.stats();
        assert_eq!(stats.updates, 0);
        assert_eq!(stats.delta_apply_seconds, 0.0);
        assert!(!stats.summary().contains("updates"), "{}", stats.summary());
    }

    #[test]
    fn out_of_range_requests_fail_without_counting() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let bad = QuerySet::from_indices([graph.num_vertices() as u32 + 10]);
        assert!(matches!(
            server.serve(&bad),
            Err(SnapleError::InvalidConfig(_))
        ));
        assert_eq!(server.stats().requests, 0);
    }

    #[test]
    fn failing_batches_leave_stats_entirely_untouched() {
        // Regression: stats must be recorded only after a successful run.
        // A mid-stream failing batch — after real traffic — must leave
        // every field (requests, batches, wall time, latency histogram)
        // exactly as it was, not count work that produced no responses.
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let good = QuerySet::sample(graph.num_vertices(), 30, 4);
        server.serve_batch(&[good.clone(), good.clone()]).unwrap();
        let before = server.stats().clone();
        assert_eq!(before.requests, 2);

        let bad = QuerySet::from_indices([graph.num_vertices() as u32 + 1]);
        // A batch mixing good and bad requests fails as a whole...
        assert!(server.serve_batch(&[good.clone(), bad]).is_err());
        // ...and no field moved — not even wall seconds or the histogram.
        assert_eq!(server.stats(), &before);

        // The stream keeps working afterwards.
        server.serve(&good).unwrap();
        assert_eq!(server.stats().requests, 3);
    }

    #[test]
    fn update_only_streams_emit_finite_stats() {
        // Regression for the zero-denominator class: a stream containing
        // only update requests executes zero queries and zero batches, so
        // coalescing_factor (received/union), throughput_rps and
        // mean_latency_seconds all sit on 0/0 holes. BENCH_JSON must see
        // finite numbers, not inf/NaN.
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let n = graph.num_vertices() as u32;
        let mut delta = GraphDelta::new();
        delta.insert(0, n - 1);
        server.apply_update(&delta).unwrap();
        let mut delta = GraphDelta::new();
        delta.remove(0, n - 1);
        server.apply_update(&delta).unwrap();

        let stats = server.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.union_queries, 0);
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.coalescing_factor(), 1.0, "0/0 must not be NaN");
        assert_eq!(stats.throughput_rps(), 0.0);
        assert_eq!(stats.mean_latency_seconds(), 0.0);
        assert_eq!(stats.latency.p50(), 0.0, "empty histogram percentiles");
        assert_eq!(stats.latency.p99(), 0.0);
        let json = stats.to_bench_json("update-only");
        assert!(!json.contains("NaN") && !json.contains("nan"), "{json}");
        assert!(!json.contains("inf"), "{json}");
        let summary = stats.summary();
        assert!(
            !summary.contains("NaN") && !summary.contains("inf"),
            "{summary}"
        );
        assert!(summary.contains("2 updates"), "{summary}");
    }

    #[test]
    fn latency_histogram_records_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        for _ in 0..98 {
            h.record(1e-3); // ~1 ms
        }
        h.record(1.0); // one 1 s outlier
        h.record(2.0); // one 2 s outlier
        assert_eq!(h.count(), 100);
        // p50 stays in the millisecond bucket (within the 2x bucket
        // resolution), p99 reaches the outliers.
        assert!(h.p50() > 0.4e-3 && h.p50() < 2.1e-3, "{}", h.p50());
        assert!(h.p95() < 2.1e-3, "{}", h.p95());
        assert!(h.p99() > 0.5, "{}", h.p99());
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());

        // Extremes clamp instead of panicking.
        h.record(0.0);
        h.record(-1.0);
        h.record(1e9);
        assert_eq!(h.count(), 103);
        assert!(h.quantile(1.0).is_finite());

        // Merging accumulates counts bucket-by-bucket.
        let mut other = LatencyHistogram::new();
        other.record(1e-3);
        other.merge(&h);
        assert_eq!(other.count(), 104);
    }

    #[test]
    fn serving_records_latency_percentiles() {
        let (graph, cluster, snaple) = setup();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        for seed in 0..5 {
            server
                .serve(&QuerySet::sample(graph.num_vertices(), 20, seed))
                .unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.latency.count(), 5, "one recording per request");
        assert!(stats.latency.p50() > 0.0);
        assert!(stats.latency.p50() <= stats.latency.p99());
        let json = stats.to_bench_json("latency");
        assert!(json.contains("\"latency_p50_ms\":"), "{json}");
        assert!(json.contains("\"latency_p99_ms\":"), "{json}");
        assert!(json.contains("\"workers\":0"), "{json}");
        assert!(
            stats.summary().contains("p50/p95/p99"),
            "{}",
            stats.summary()
        );
    }
}
