//! Error type of the SNAPLE predictor.

use std::error::Error as StdError;
use std::fmt;

use snaple_gas::EngineError;

/// Errors produced while running a SNAPLE prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapleError {
    /// The underlying GAS engine failed (resource exhaustion, injected node
    /// failures, invalid cluster shapes).
    Engine(EngineError),
    /// The prediction configuration is unusable.
    InvalidConfig(String),
    /// A [`ConcurrentServer`](crate::concurrent::ConcurrentServer)'s
    /// bounded submission queue is full — backpressure instead of
    /// unbounded memory growth. Retry, block with
    /// [`ServeHandle::submit`](crate::concurrent::ServeHandle::submit), or
    /// raise
    /// [`ConcurrentOptions::queue_capacity`](crate::concurrent::ConcurrentOptions::queue_capacity).
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// A shard of a [`ShardRouter`](crate::shard::ShardRouter) deployment
    /// failed — its process died, its pipe broke, or it answered with a
    /// malformed or corrupt wire frame. In-flight requests routed to the
    /// shard fail with this error; the router itself stays up and
    /// `drain()` still completes.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// What broke: the wire/transport error message.
        message: String,
    },
    /// The durability layer failed to persist an update: the commitlog
    /// append or a snapshot checkpoint hit an I/O failure *before* the
    /// delta was applied — the serving state is unchanged and the
    /// update must be considered rejected (write-ahead semantics).
    Durability {
        /// The underlying `snaple_store::StoreError` message.
        message: String,
    },
}

impl fmt::Display for SnapleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapleError::Engine(e) => write!(f, "engine error: {e}"),
            SnapleError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SnapleError::QueueFull { capacity } => write!(
                f,
                "submission queue full ({capacity} requests pending); retry, \
                 block via submit(), or raise the queue capacity"
            ),
            SnapleError::ShardFailed { shard, message } => {
                write!(f, "shard {shard} failed: {message}")
            }
            SnapleError::Durability { message } => {
                write!(f, "durability error (update not applied): {message}")
            }
        }
    }
}

impl StdError for SnapleError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SnapleError::Engine(e) => Some(e),
            SnapleError::InvalidConfig(_)
            | SnapleError::QueueFull { .. }
            | SnapleError::ShardFailed { .. }
            | SnapleError::Durability { .. } => None,
        }
    }
}

impl From<EngineError> for SnapleError {
    fn from(e: EngineError) -> Self {
        SnapleError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_gas::NodeId;

    #[test]
    fn wraps_engine_errors_with_source() {
        let e: SnapleError = EngineError::NodeFailure {
            node: NodeId::new(1),
            step: "s".into(),
        }
        .into();
        assert!(e.to_string().contains("engine error"));
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapleError>();
    }
}
