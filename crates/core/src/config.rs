//! Scoring configurations and predictor settings.

use std::fmt;
use std::sync::Arc;

use snaple_gas::PartitionStrategy;

use crate::aggregator::{self, Aggregator};
use crate::combinator::{self, Combinator};
use crate::similarity::{self, Similarity};

/// The named scoring configurations of the paper's Table 3.
///
/// Each value is a (similarity, combinator `⊗`, aggregator `⊕`) triple;
/// [`NamedScore::resolve`] instantiates the components. The `Sum` family
/// additionally contains the two gray rows of the table: a personalized
/// PageRank-like score (`Ppr`) and the plain 2-hop path counter
/// (`Counter`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // the variants are the paper's Table 3 row names
pub enum NamedScore {
    LinearSum,
    EuclSum,
    GeomSum,
    Ppr,
    Counter,
    LinearMean,
    EuclMean,
    GeomMean,
    LinearGeom,
    EuclGeom,
    GeomGeom,
}

impl NamedScore {
    /// All eleven rows of Table 3, in table order.
    pub fn all() -> [NamedScore; 11] {
        [
            NamedScore::LinearSum,
            NamedScore::EuclSum,
            NamedScore::GeomSum,
            NamedScore::Ppr,
            NamedScore::Counter,
            NamedScore::LinearMean,
            NamedScore::EuclMean,
            NamedScore::GeomMean,
            NamedScore::LinearGeom,
            NamedScore::EuclGeom,
            NamedScore::GeomGeom,
        ]
    }

    /// The five `Sum`-aggregated configurations (paper Fig. 8a, 9, 10).
    pub fn sum_family() -> [NamedScore; 5] {
        [
            NamedScore::Counter,
            NamedScore::EuclSum,
            NamedScore::GeomSum,
            NamedScore::LinearSum,
            NamedScore::Ppr,
        ]
    }

    /// The three `Mean`-aggregated configurations (paper Fig. 8b).
    pub fn mean_family() -> [NamedScore; 3] {
        [
            NamedScore::EuclMean,
            NamedScore::GeomMean,
            NamedScore::LinearMean,
        ]
    }

    /// The three `Geom`-aggregated configurations (paper Fig. 8c).
    pub fn geom_family() -> [NamedScore; 3] {
        [
            NamedScore::EuclGeom,
            NamedScore::GeomGeom,
            NamedScore::LinearGeom,
        ]
    }

    /// The paper's name for this configuration ("linearSum", ...).
    pub fn name(self) -> &'static str {
        match self {
            NamedScore::LinearSum => "linearSum",
            NamedScore::EuclSum => "euclSum",
            NamedScore::GeomSum => "geomSum",
            NamedScore::Ppr => "PPR",
            NamedScore::Counter => "counter",
            NamedScore::LinearMean => "linearMean",
            NamedScore::EuclMean => "euclMean",
            NamedScore::GeomMean => "geomMean",
            NamedScore::LinearGeom => "linearGeom",
            NamedScore::EuclGeom => "euclGeom",
            NamedScore::GeomGeom => "geomGeom",
        }
    }

    /// Parses a paper name back into a spec.
    pub fn parse(name: &str) -> Option<NamedScore> {
        NamedScore::all().into_iter().find(|s| s.name() == name)
    }

    /// Instantiates the similarity/combinator/aggregator triple, using
    /// `alpha` for linear combinators.
    pub fn resolve(self, alpha: f32) -> ScoreComponents {
        use NamedScore::*;
        let similarity: Arc<dyn Similarity> = match self {
            Ppr => Arc::new(similarity::InverseDegree),
            Counter => Arc::new(similarity::Unit),
            // The shared instance, so scoring and selection hold the
            // same Arc and execution computes Jaccard once per edge.
            _ => similarity::shared_jaccard(),
        };
        let combinator: Arc<dyn Combinator> = match self {
            LinearSum | LinearMean | LinearGeom => Arc::new(combinator::Linear::new(alpha)),
            EuclSum | EuclMean | EuclGeom => Arc::new(combinator::Euclidean),
            GeomSum | GeomMean | GeomGeom => Arc::new(combinator::Geometric),
            Ppr => Arc::new(combinator::Arithmetic),
            Counter => Arc::new(combinator::Count),
        };
        let aggregator: Arc<dyn Aggregator> = match self {
            LinearSum | EuclSum | GeomSum | Ppr | Counter => Arc::new(aggregator::Sum),
            LinearMean | EuclMean | GeomMean => Arc::new(aggregator::Mean),
            LinearGeom | EuclGeom | GeomGeom => Arc::new(aggregator::GeometricMean),
        };
        ScoreComponents {
            name: self.name().to_owned(),
            similarity,
            // Eq. 11 defines Γmax via the similarity metric *on sets*
            // `f(Γ̂(u), Γ̂(z))`, so neighbor sampling always ranks by
            // Jaccard even when the scoring similarity is degenerate
            // (counter's constant, PPR's inverse degree).
            selection_similarity: similarity::shared_jaccard(),
            combinator,
            aggregator,
        }
    }
}

impl fmt::Display for NamedScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully instantiated scoring configuration.
///
/// Usually produced by [`NamedScore::resolve`]; build one by hand to plug
/// custom metrics into the framework.
#[derive(Clone)]
pub struct ScoreComponents {
    /// Display name used in reports.
    pub name: String,
    /// Raw similarity `sim(u, v)` fed into the combinator.
    pub similarity: Arc<dyn Similarity>,
    /// Set similarity ranking neighbors for `Γmax`/`Γmin` sampling
    /// (eq. 11's `f`; Jaccard in every named configuration).
    pub selection_similarity: Arc<dyn Similarity>,
    /// Path combinator `⊗`.
    pub combinator: Arc<dyn Combinator>,
    /// Path aggregator `⊕`.
    pub aggregator: Arc<dyn Aggregator>,
}

impl ScoreComponents {
    /// Whether scoring and selection hold the *same* similarity instance
    /// (lets execution compute it once per edge).
    ///
    /// Sharing is detected by `Arc` identity, never by the kernel's
    /// self-reported name — a custom kernel whose `name()` collides with
    /// the selection similarity's must still be evaluated, or its column
    /// would silently score with the wrong function. Components built by
    /// [`NamedScore::resolve`] and the [spec parser](crate::spec) route
    /// their Jaccard uses through [`similarity::shared_jaccard`], so the
    /// common all-Jaccard case keeps the single-evaluation fast path;
    /// hand-built components get it by cloning one `Arc` into both
    /// fields.
    pub fn shares_selection_similarity(&self) -> bool {
        // Compare data pointers (not `Arc::ptr_eq` on the fat pointer,
        // whose vtable component makes dyn comparisons ambiguous).
        std::ptr::eq(
            Arc::as_ptr(&self.similarity) as *const u8,
            Arc::as_ptr(&self.selection_similarity) as *const u8,
        )
    }
}

impl fmt::Debug for ScoreComponents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScoreComponents")
            .field("name", &self.name)
            .field("similarity", &self.similarity.name())
            .field("selection_similarity", &self.selection_similarity.name())
            .field("combinator", &self.combinator.name())
            .field("aggregator", &self.aggregator.name())
            .finish()
    }
}

/// Path length explored by the scoring program.
///
/// The paper evaluates 2-hop paths (`K = 2` in eq. 2) and sketches the
/// extension to longer paths by "recursively applying ⊗ to the raw
/// similarities of individual edges" (footnote 2). [`PathLength::Three`]
/// implements that recursion: each vertex's aggregated 2-hop scores are
/// promoted into its similarity table and the path-combination step runs a
/// second time, scoring candidates up to three hops away.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum PathLength {
    /// Standard 2-hop SNAPLE (the paper's evaluated configuration).
    #[default]
    Two,
    /// Recursive 3-hop extension (paper §3.1, footnote 2).
    Three,
}

/// Neighbor-sampling policy for step 2 (paper §5.6).
///
/// The paper compares keeping the `klocal` *most* similar neighbors
/// (`Γmax`, the default), the *least* similar (`Γmin`), and a uniform
/// random subset (`Γrnd`), showing `Γmax` dominates for small `klocal`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum SelectionPolicy {
    /// Keep the most similar neighbors (`Γmax_klocal`, eq. 11).
    #[default]
    Max,
    /// Keep the least similar neighbors (`Γmin_klocal`).
    Min,
    /// Keep a uniform random subset (`Γrnd_klocal`).
    Random,
}

impl SelectionPolicy {
    /// All policies, for the Figure 7 sweep.
    pub fn all() -> [SelectionPolicy; 3] {
        [
            SelectionPolicy::Max,
            SelectionPolicy::Min,
            SelectionPolicy::Random,
        ]
    }

    /// Paper notation for the policy.
    pub fn name(self) -> &'static str {
        match self {
            SelectionPolicy::Max => "max",
            SelectionPolicy::Min => "min",
            SelectionPolicy::Random => "rnd",
        }
    }
}

/// Full configuration of a SNAPLE prediction run.
///
/// Defaults follow the paper's evaluation protocol (§5.2): `k = 5`
/// predictions per vertex, truncation threshold `thrΓ = 200`, sampling
/// parameter `klocal = 20`, linear-combinator weight `α = 0.9`, `Γmax`
/// sampling.
///
/// ```
/// use snaple_core::{NamedScore, SnapleConfig};
/// let c = SnapleConfig::new(NamedScore::LinearSum)
///     .k(10)
///     .klocal(None) // no sampling
///     .thr_gamma(Some(80));
/// assert_eq!(c.k, 10);
/// assert_eq!(c.klocal, None);
/// ```
#[derive(Clone, Debug)]
pub struct SnapleConfig {
    /// Number of predictions returned per vertex.
    pub k: usize,
    /// Sampling parameter `klocal`; `None` disables sampling (`∞`).
    pub klocal: Option<usize>,
    /// Truncation threshold `thrΓ`; `None` disables truncation (`∞`).
    pub thr_gamma: Option<usize>,
    /// Scoring configuration (Table 3 row).
    pub score: NamedScore,
    /// Linear-combinator weight `α`.
    pub alpha: f32,
    /// Neighbor-sampling policy for step 2.
    pub selection: SelectionPolicy,
    /// Seed driving every randomized decision (truncation, random
    /// sampling, partitioning).
    pub seed: u64,
    /// Edge-placement strategy of the underlying engine.
    pub partition: PartitionStrategy,
    /// How many hops the scored paths span.
    pub path_length: PathLength,
}

impl SnapleConfig {
    /// Creates a configuration with the paper's default parameters.
    pub fn new(score: NamedScore) -> Self {
        SnapleConfig {
            k: 5,
            klocal: Some(20),
            thr_gamma: Some(200),
            score,
            alpha: 0.9,
            selection: SelectionPolicy::Max,
            seed: 0x5a_b1e,
            partition: PartitionStrategy::RandomVertexCut,
            path_length: PathLength::Two,
        }
    }

    /// Sets the number of predictions per vertex.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the sampling parameter (`None` = no sampling).
    pub fn klocal(mut self, klocal: Option<usize>) -> Self {
        self.klocal = klocal;
        self
    }

    /// Sets the truncation threshold (`None` = no truncation).
    pub fn thr_gamma(mut self, thr: Option<usize>) -> Self {
        self.thr_gamma = thr;
        self
    }

    /// Sets the linear-combinator weight.
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the neighbor-sampling policy.
    pub fn selection(mut self, policy: SelectionPolicy) -> Self {
        self.selection = policy;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the partition strategy.
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = strategy;
        self
    }

    /// Sets the explored path length.
    pub fn path_length(mut self, length: PathLength) -> Self {
        self.path_length = length;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_three_is_complete() {
        assert_eq!(NamedScore::all().len(), 11);
        let names: Vec<_> = NamedScore::all().iter().map(|s| s.name()).collect();
        assert!(names.contains(&"linearSum"));
        assert!(names.contains(&"PPR"));
        assert!(names.contains(&"counter"));
        assert!(names.contains(&"geomGeom"));
    }

    #[test]
    fn families_partition_the_table() {
        let mut all: Vec<NamedScore> = Vec::new();
        all.extend(NamedScore::sum_family());
        all.extend(NamedScore::mean_family());
        all.extend(NamedScore::geom_family());
        all.sort_by_key(|s| s.name());
        let mut expected = NamedScore::all().to_vec();
        expected.sort_by_key(|s| s.name());
        assert_eq!(all, expected);
    }

    #[test]
    fn parse_round_trips() {
        for s in NamedScore::all() {
            assert_eq!(NamedScore::parse(s.name()), Some(s));
        }
        assert_eq!(NamedScore::parse("bogus"), None);
    }

    #[test]
    fn resolve_matches_table_three_rows() {
        let c = NamedScore::LinearSum.resolve(0.9);
        assert_eq!(c.similarity.name(), "jaccard");
        assert_eq!(c.combinator.name(), "linear");
        assert_eq!(c.aggregator.name(), "Sum");

        let ppr = NamedScore::Ppr.resolve(0.9);
        assert_eq!(ppr.similarity.name(), "inverse-degree");
        assert_eq!(ppr.combinator.name(), "sum");
        assert_eq!(ppr.aggregator.name(), "Sum");

        let counter = NamedScore::Counter.resolve(0.9);
        assert_eq!(counter.similarity.name(), "unit");
        assert_eq!(counter.combinator.name(), "count");

        let gg = NamedScore::GeomGeom.resolve(0.9);
        assert_eq!(gg.combinator.name(), "geom");
        assert_eq!(gg.aggregator.name(), "Geom");
    }

    #[test]
    fn config_defaults_follow_the_paper() {
        let c = SnapleConfig::new(NamedScore::LinearSum);
        assert_eq!(c.k, 5);
        assert_eq!(c.klocal, Some(20));
        assert_eq!(c.thr_gamma, Some(200));
        assert!((c.alpha - 0.9).abs() < 1e-6);
        assert_eq!(c.selection, SelectionPolicy::Max);
    }

    #[test]
    fn builder_methods_chain() {
        let c = SnapleConfig::new(NamedScore::Counter)
            .k(7)
            .klocal(Some(40))
            .thr_gamma(None)
            .alpha(0.5)
            .selection(SelectionPolicy::Random)
            .seed(9)
            .partition(PartitionStrategy::GreedyVertexCut);
        assert_eq!(c.k, 7);
        assert_eq!(c.thr_gamma, None);
        assert_eq!(c.selection, SelectionPolicy::Random);
        assert_eq!(c.partition, PartitionStrategy::GreedyVertexCut);
    }

    #[test]
    fn components_debug_is_informative() {
        let c = NamedScore::EuclMean.resolve(0.9);
        let s = format!("{c:?}");
        assert!(s.contains("eucl") && s.contains("Mean") && s.contains("jaccard"));
    }
}
