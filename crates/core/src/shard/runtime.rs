//! The shard runtime: one isolated serving loop speaking the wire
//! protocol over any byte stream.
//!
//! A shard is a **complete** serving runtime — it decodes its own copy of
//! the graph from the [`Request::Prepare`] frame, builds its own
//! predictor and vertex-cut deployment, and answers the sub-queries the
//! router assigns to it with masked runs. Because masked runs are exact
//! (each queried row is bit-identical to an all-vertices run), a shard's
//! rows can be unioned with other shards' rows without any cross-shard
//! coordination.
//!
//! [`serve_connection`] is deliberately generic over `Read + Write`: the
//! in-process thread transport hands it channel-backed streams
//! ([`ChannelReader`]/[`ChannelWriter`]), the OS-process transport hands
//! it the child's stdin/stdout — and both therefore run the *same* code
//! over the *same* serialized frames.

use std::io::{Read, Write};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

use snaple_graph::GraphDelta;

use crate::plan::ScorePlan;
use crate::predictor::Snaple;
use crate::predictor_api::{
    ExecuteRequest, Predictor, PrepareRequest, PreparedPredictor, QuerySet,
};
use crate::serve::ServerStats;
use crate::spec::ScoreSpec;

use super::wire::{self, PrepareShard, Reply, Request, ShardSpec, WireError, WireRow};

/// Runs one shard's serve loop over a framed byte stream until the peer
/// sends [`Request::Shutdown`] or closes the connection.
///
/// The first frame must be [`Request::Prepare`]; everything the shard
/// needs (graph, cluster, predictor spec) arrives in it. Application
/// errors (a bad query set, an engine failure, an unbuildable spec) are
/// answered with [`Reply::Err`] and the loop keeps serving; transport
/// errors (truncation, corruption, I/O failure) abort the loop with the
/// [`WireError`], which an OS-process shard turns into a nonzero exit.
///
/// # Errors
///
/// Any [`WireError`] on the underlying stream; a clean peer close
/// (`WireError::Closed`) between frames returns `Ok(())`.
pub fn serve_connection<R: Read, W: Write>(mut reader: R, mut writer: W) -> Result<(), WireError> {
    let mut payload = Vec::new();
    let tag = match wire::read_frame(&mut reader, &mut payload) {
        Ok(tag) => tag,
        Err(WireError::Closed) => return Ok(()),
        Err(e) => return Err(e),
    };
    let prep = match Request::decode(tag, &payload)? {
        Request::Prepare(p) => p,
        _ => return Err(WireError::Malformed("first frame must be Prepare")),
    };
    run_shard(*prep, reader, &mut writer, payload)
}

fn send<W: Write>(writer: &mut W, reply: &Reply) -> Result<(), WireError> {
    let frame = reply.encode()?;
    writer.write_all(&frame)?;
    writer.flush()?;
    Ok(())
}

fn send_err<W: Write>(
    writer: &mut W,
    request_id: u64,
    message: impl ToString,
) -> Result<(), WireError> {
    send(
        writer,
        &Reply::Err {
            request_id,
            message: message.to_string(),
        },
    )
}

fn run_shard<R: Read, W: Write>(
    prep: PrepareShard,
    mut reader: R,
    writer: &mut W,
    mut payload: Vec<u8>,
) -> Result<(), WireError> {
    let setup_started = Instant::now();
    let graph = match snaple_graph::io::read_binary(prep.graph_blob.as_slice()) {
        Ok(g) => g,
        Err(e) => {
            send_err(writer, 0, format!("shard graph blob: {e}"))?;
            return Ok(());
        }
    };
    let cluster = prep.cluster;
    let predictor: Box<dyn Predictor> = match prep.spec {
        ShardSpec::Single(config) => Box::new(Snaple::new(config)),
        ShardSpec::Plan { specs, config } => {
            let parsed: Result<Vec<ScoreSpec>, _> =
                specs.iter().map(|s| ScoreSpec::parse(s)).collect();
            let plan = parsed.and_then(|specs| ScorePlan::with_config(specs, config));
            match plan {
                Ok(p) => Box::new(p),
                Err(e) => {
                    send_err(writer, 0, e)?;
                    return Ok(());
                }
            }
        }
    };
    let mut prepared: Box<dyn PreparedPredictor + '_> =
        match predictor.prepare(&PrepareRequest::new(&graph, &cluster)) {
            Ok(p) => p,
            Err(e) => {
                send_err(writer, 0, e)?;
                return Ok(());
            }
        };

    let mut num_vertices = graph.num_vertices() as u64;
    let mut stats = ServerStats {
        setup_wall_seconds: setup_started.elapsed().as_secs_f64(),
        partition_build_seconds: prepared.setup().partition_build_seconds,
        replication_factor: prepared.setup().replication_factor,
        workers: 1,
        ..ServerStats::default()
    };
    send(writer, &Reply::Ready { num_vertices })?;

    let serve_started = Instant::now();
    loop {
        let tag = match wire::read_frame(&mut reader, &mut payload) {
            Ok(tag) => tag,
            Err(WireError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        match Request::decode(tag, &payload)? {
            Request::Prepare(_) => {
                return Err(WireError::Malformed("duplicate Prepare frame"));
            }
            Request::Predict {
                request_id,
                queries,
            } => {
                let started = Instant::now();
                let query_set = QuerySet::from_indices(queries.iter().copied());
                let mut exec = ExecuteRequest::new().with_queries(&query_set);
                if let Some(seed) = prep.seed_override {
                    exec = exec.with_seed(seed);
                }
                match prepared.execute(&exec) {
                    Ok(prediction) => {
                        stats.latency.record(started.elapsed().as_secs_f64());
                        stats.requests += 1;
                        stats.batches += 1;
                        stats.queries_received += query_set.len();
                        stats.union_queries += query_set.len();
                        stats.simulated_seconds += prediction.simulated_seconds();
                        // Ship only the queried rows: every other row of
                        // the masked run is empty by the masking contract.
                        let rows: Vec<WireRow> = query_set
                            .iter()
                            .map(|q| {
                                let preds = prediction
                                    .for_vertex(q)
                                    .iter()
                                    .map(|&(v, s)| (v.as_u32(), s))
                                    .collect();
                                (q.as_u32(), preds)
                            })
                            .collect();
                        send(
                            writer,
                            &Reply::Rows {
                                request_id,
                                num_vertices: prediction.num_vertices() as u64,
                                rows,
                                stats: prediction.stats,
                            },
                        )?;
                    }
                    Err(e) => send_err(writer, request_id, e)?,
                }
            }
            Request::Delta { request_id, ops } => {
                let mut delta = GraphDelta::new();
                for (u, v, w, insert) in ops {
                    if insert {
                        delta.insert_weighted(u, v, w);
                    } else {
                        delta.remove(u, v);
                    }
                }
                // Epoch swap, shard-locally: build the post-delta
                // snapshot off to the side, then replace the serving
                // snapshot — the same fork-and-publish discipline the
                // concurrent server uses across threads.
                match prepared.fork_with_delta(&delta) {
                    Ok((fork, delta_stats)) => {
                        prepared = fork;
                        num_vertices += delta_stats.grown_vertices as u64;
                        stats.updates += 1;
                        stats.edges_inserted += delta_stats.inserted_edges;
                        stats.edges_removed += delta_stats.removed_edges;
                        stats.delta_apply_seconds += delta_stats.apply_wall_seconds;
                        stats.delta_touched_partitions = stats
                            .delta_touched_partitions
                            .max(delta_stats.touched_partitions);
                        send(
                            writer,
                            &Reply::DeltaOk {
                                request_id,
                                num_vertices,
                                stats: delta_stats,
                            },
                        )?;
                    }
                    Err(e) => send_err(writer, request_id, e)?,
                }
            }
            Request::Shutdown => {
                stats.serve_wall_seconds = serve_started.elapsed().as_secs_f64();
                send(
                    writer,
                    &Reply::Stats {
                        stats: Box::new(stats),
                    },
                )?;
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Channel-backed byte streams: the in-process transport.
// ---------------------------------------------------------------------------

/// A `Read` over an `mpsc` channel of byte chunks — the receiving half
/// of the in-process shard transport. Blocks on the channel when its
/// buffer runs dry; a closed channel reads as EOF, which the frame layer
/// reports as [`WireError::Closed`] on a frame boundary (and
/// [`WireError::Truncated`] inside one).
pub struct ChannelReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl ChannelReader {
    /// Wraps the receiving end of a chunk channel.
    pub fn new(rx: Receiver<Vec<u8>>) -> Self {
        ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        // Zero-length chunks are legal; keep receiving until bytes or EOF.
        while self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // channel closed = EOF
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        // snaple-lint: allow(index) — n = min(out.len(), buf.len() - pos), so both ranges are in bounds
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A `Write` over an `mpsc` channel of byte chunks — the sending half of
/// the in-process shard transport. Each `write` forwards one chunk; a
/// hung-up receiver surfaces as `BrokenPipe`, exactly like a dead child
/// process on the pipe transport.
pub struct ChannelWriter {
    tx: Sender<Vec<u8>>,
}

impl ChannelWriter {
    /// Wraps the sending end of a chunk channel.
    pub fn new(tx: Sender<Vec<u8>>) -> Self {
        ChannelWriter { tx }
    }
}

impl Write for ChannelWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.tx.send(data.to_vec()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "shard channel closed")
        })?;
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    use snaple_gas::ClusterSpec;
    use snaple_graph::gen::datasets;

    use crate::config::{NamedScore, SnapleConfig};

    fn prepare_frame(graph_blob: Vec<u8>) -> Vec<u8> {
        Request::Prepare(Box::new(PrepareShard {
            shard: 0,
            num_shards: 1,
            seed_override: None,
            spec: ShardSpec::Single(
                SnapleConfig::new(NamedScore::LinearSum)
                    .k(5)
                    .klocal(Some(10)),
            ),
            cluster: ClusterSpec::type_ii(4),
            graph_blob,
        }))
        .encode()
        .unwrap()
    }

    #[test]
    fn channel_streams_round_trip_frames() {
        let (tx, rx) = mpsc::channel();
        let mut w = ChannelWriter::new(tx);
        let frame = Request::Shutdown.encode().unwrap();
        w.write_all(&frame).unwrap();
        drop(w);
        let mut r = ChannelReader::new(rx);
        let mut payload = Vec::new();
        let tag = wire::read_frame(&mut r, &mut payload).unwrap();
        assert!(matches!(
            Request::decode(tag, &payload).unwrap(),
            Request::Shutdown
        ));
        // Past the last chunk: clean EOF.
        assert_eq!(
            wire::read_frame(&mut r, &mut payload),
            Err(WireError::Closed)
        );
    }

    #[test]
    fn shard_serves_prepare_predict_shutdown_over_channels() {
        let graph = datasets::GOWALLA.emulate(0.003, 3);
        let mut blob = Vec::new();
        snaple_graph::io::write_binary(&graph, &mut blob).unwrap();

        let (cmd_tx, cmd_rx) = mpsc::channel();
        let (reply_tx, reply_rx) = mpsc::channel();
        let shard = std::thread::spawn(move || {
            serve_connection(ChannelReader::new(cmd_rx), ChannelWriter::new(reply_tx))
        });

        cmd_tx.send(prepare_frame(blob)).unwrap();
        let mut reader = ChannelReader::new(reply_rx);
        let mut payload = Vec::new();
        let tag = wire::read_frame(&mut reader, &mut payload).unwrap();
        let nv = match Reply::decode(tag, &payload).unwrap() {
            Reply::Ready { num_vertices } => num_vertices,
            other => panic!("expected Ready, got {other:?}"),
        };
        assert_eq!(nv, graph.num_vertices() as u64);

        cmd_tx
            .send(
                Request::Predict {
                    request_id: 1,
                    queries: vec![0, 3, 9],
                }
                .encode()
                .unwrap(),
            )
            .unwrap();
        let tag = wire::read_frame(&mut reader, &mut payload).unwrap();
        match Reply::decode(tag, &payload).unwrap() {
            Reply::Rows {
                request_id, rows, ..
            } => {
                assert_eq!(request_id, 1);
                assert_eq!(rows.len(), 3);
                let queried: Vec<u32> = rows.iter().map(|(v, _)| *v).collect();
                assert_eq!(queried, vec![0, 3, 9]);
            }
            other => panic!("expected Rows, got {other:?}"),
        }

        cmd_tx.send(Request::Shutdown.encode().unwrap()).unwrap();
        let tag = wire::read_frame(&mut reader, &mut payload).unwrap();
        match Reply::decode(tag, &payload).unwrap() {
            Reply::Stats { stats } => {
                assert_eq!(stats.requests, 1);
                assert_eq!(stats.queries_received, 3);
                assert_eq!(stats.latency.count(), 1);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        shard.join().unwrap().unwrap();
    }

    #[test]
    fn shard_reports_prepare_failures_as_err_replies() {
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let (reply_tx, reply_rx) = mpsc::channel();
        let shard = std::thread::spawn(move || {
            serve_connection(ChannelReader::new(cmd_rx), ChannelWriter::new(reply_tx))
        });
        // A garbage graph blob cannot deserialize; the shard must answer
        // with a typed Err reply and exit cleanly, not crash.
        cmd_tx.send(prepare_frame(vec![0xDE, 0xAD])).unwrap();
        let mut reader = ChannelReader::new(reply_rx);
        let mut payload = Vec::new();
        let tag = wire::read_frame(&mut reader, &mut payload).unwrap();
        match Reply::decode(tag, &payload).unwrap() {
            Reply::Err {
                request_id,
                message,
            } => {
                assert_eq!(request_id, 0);
                assert!(message.contains("graph blob"), "message: {message}");
            }
            other => panic!("expected Err, got {other:?}"),
        }
        drop(cmd_tx);
        shard.join().unwrap().unwrap();
    }
}
