//! The scatter-gather router: one serving front end over N shard
//! runtimes.
//!
//! [`ShardRouter::run`] mirrors the scoped-run shape of
//! [`ConcurrentServer::run`](crate::concurrent::ConcurrentServer::run):
//! it stands the shard fleet up, hands the body a [`RouterHandle`], and
//! tears the fleet down when the body returns, yielding the merged
//! statistics. Requests **scatter**: each queried vertex is routed to
//! the one shard owning its master partition
//! ([`ShardAssignment::shard_of_vertex`]), so sub-queries are disjoint
//! and the gathered rows union into exactly the rows a single-process
//! server would produce. Updates **broadcast**: every shard applies the
//! same delta as a shard-local epoch fork, keeping all snapshots
//! identical.
//!
//! Shard death is a first-class outcome, not a hang: a broken pipe,
//! EOF, or corrupt reply marks the shard dead, fails every in-flight
//! request routed to it with [`SnapleError::ShardFailed`], rejects
//! future requests touching it with the same error, and leaves
//! [`RouterHandle::drain`] able to complete.

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use snaple_gas::{ClusterSpec, DeltaStats, RunStats, ShardAssignment};
use snaple_graph::{GraphDelta, GraphStore, VertexId};

use crate::error::SnapleError;
use crate::predictor::Prediction;
use crate::predictor_api::QuerySet;
use crate::serve::ServerStats;

use super::process;
use super::runtime::{serve_connection, ChannelReader, ChannelWriter};
use super::wire::{Reply, Request, ShardSpec, WireRow};

/// How shard runtimes are hosted.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ShardTransport {
    /// Each shard is a thread in this process; frames travel over
    /// channels. No extra processes, no serialization savings — the
    /// frames are byte-for-byte the same as the process transport's.
    #[default]
    Threads,
    /// Each shard is a `snaple-shardd` child process; frames travel over
    /// stdin/stdout pipes. Full OS-level isolation: a crashing shard
    /// cannot take the router down.
    Processes,
}

/// Configuration of a [`ShardRouter`] deployment.
#[derive(Clone, Debug, Default)]
pub struct ShardOptions {
    shards: usize,
    transport: ShardTransport,
    seed: Option<u64>,
    shardd: Option<std::path::PathBuf>,
}

impl ShardOptions {
    /// Default options: 1 shard, thread transport.
    pub fn new() -> Self {
        ShardOptions {
            shards: 1,
            ..ShardOptions::default()
        }
    }

    /// Sets the number of shards. Validated against the cluster's
    /// partition count by [`ShardRouter::run`]: zero shards or more
    /// shards than partitions are rejected.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Selects the transport hosting the shard runtimes.
    pub fn transport(mut self, transport: ShardTransport) -> Self {
        self.transport = transport;
        self
    }

    /// Overrides the seed of every request's randomized parts, matching
    /// [`ConcurrentOptions::seed`](crate::concurrent::ConcurrentOptions::seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides where the `snaple-shardd` binary is found (process
    /// transport only); defaults to [`process::shardd_path`] resolution.
    pub fn shardd_binary(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.shardd = Some(path.into());
        self
    }
}

/// What one [`ShardRouter::run`] produced: the body's return value plus
/// the fleet's merged statistics.
#[derive(Debug)]
pub struct ShardOutcome<R> {
    /// The body's return value.
    pub value: R,
    /// Merged statistics: router-level request/update counts, per-shard
    /// latency histograms folded with
    /// [`LatencyHistogram::merge`](crate::serve::LatencyHistogram::merge),
    /// wall-clock maxima across the concurrently-serving shards.
    pub stats: ServerStats,
}

// ---------------------------------------------------------------------------
// Internal shared state.
// ---------------------------------------------------------------------------

/// One in-flight scattered request: filled in by reader threads as the
/// involved shards answer.
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

struct SlotState {
    /// Shard indices that have not answered yet.
    waiting: Vec<usize>,
    rows: Vec<WireRow>,
    run_stats: Vec<RunStats>,
    delta_stats: Vec<DeltaStats>,
    num_vertices: u64,
    error: Option<SnapleError>,
    done: bool,
}

/// One shard's router-side connection: the frame writer (and, for the
/// process transport, the child's handle for kill/reap).
struct ShardConn {
    writer: Mutex<Option<Box<dyn Write + Send>>>,
    child: Mutex<Option<std::process::Child>>,
}

#[derive(Default)]
struct Gauges {
    outstanding: usize,
    requests: usize,
    queries_received: usize,
    updates: usize,
    edges_inserted: usize,
    edges_removed: usize,
}

struct RouterShared {
    conns: Vec<ShardConn>,
    assignment: ShardAssignment,
    /// The spec's partition seed — what master placement (and therefore
    /// vertex→shard ownership) is derived from.
    ownership_seed: u64,
    next_id: AtomicU64,
    epoch: AtomicU64,
    pending: Mutex<HashMap<u64, Arc<Slot>>>,
    gauges: Mutex<Gauges>,
    idle_cv: Condvar,
    /// Per-shard death notice; `Some` permanently fails routing there.
    dead: Mutex<Vec<Option<String>>>,
    /// Per-shard prepare outcome (`Ok(num_vertices)` or the error text).
    ready: Mutex<Vec<Option<Result<u64, String>>>>,
    ready_cv: Condvar,
    /// Per-shard final statistics, delivered on shutdown.
    final_stats: Mutex<Vec<Option<ServerStats>>>,
    /// Current vertex count of the served epoch (grows with deltas).
    num_vertices: Mutex<u64>,
}

impl RouterShared {
    fn shard_of(&self, vertex: u32) -> usize {
        self.assignment.shard_of_vertex(self.ownership_seed, vertex)
    }

    /// Marks shard `i` dead: future routes there fail fast, every
    /// pending request waiting on it fails now, and anyone blocked on
    /// readiness or drain is woken. Idempotent.
    fn mark_dead(&self, i: usize, message: &str) {
        {
            let mut dead = crate::sync::lock(&self.dead);
            match dead.get_mut(i) {
                Some(slot) if slot.is_none() => *slot = Some(message.to_string()),
                _ => return, // already dead, or not a shard we know
            }
        }
        // Unblock a prepare waiting on this shard.
        {
            let mut ready = crate::sync::lock(&self.ready);
            if let Some(slot) = ready.get_mut(i) {
                if slot.is_none() {
                    *slot = Some(Err(message.to_string()));
                }
            }
            self.ready_cv.notify_all();
        }
        // Close our writer so nothing else is sent there.
        if let Some(conn) = self.conns.get(i) {
            *crate::sync::lock(&conn.writer) = None;
        }
        // Fail every slot waiting on this shard.
        let failed: Vec<Arc<Slot>> = {
            let mut pending = crate::sync::lock(&self.pending);
            let ids: Vec<u64> = pending
                .iter()
                .filter(|(_, slot)| crate::sync::lock(&slot.state).waiting.contains(&i))
                .map(|(&id, _)| id)
                .collect();
            ids.iter().filter_map(|id| pending.remove(id)).collect()
        };
        let n_failed = failed.len();
        for slot in failed {
            let mut state = crate::sync::lock(&slot.state);
            state.error = Some(SnapleError::ShardFailed {
                shard: i,
                message: message.to_string(),
            });
            state.done = true;
            slot.cv.notify_all();
        }
        if n_failed > 0 {
            let mut gauges = crate::sync::lock(&self.gauges);
            gauges.outstanding -= n_failed.min(gauges.outstanding);
            self.idle_cv.notify_all();
        }
    }

    /// Records shard `i`'s answer for `request_id`; completes the slot
    /// when it was the last shard owing a reply.
    fn complete(
        &self,
        i: usize,
        request_id: u64,
        fill: impl FnOnce(&mut SlotState),
        error: Option<SnapleError>,
    ) {
        let slot = {
            let pending = crate::sync::lock(&self.pending);
            match pending.get(&request_id) {
                Some(slot) => Arc::clone(slot),
                None => return, // already failed via mark_dead
            }
        };
        let finished = {
            let mut state = crate::sync::lock(&slot.state);
            state.waiting.retain(|&s| s != i);
            if let Some(e) = error {
                state.error = Some(e);
                state.done = true;
            } else {
                fill(&mut state);
                if state.waiting.is_empty() {
                    state.done = true;
                }
            }
            if state.done {
                slot.cv.notify_all();
            }
            state.done
        };
        if finished {
            crate::sync::lock(&self.pending).remove(&request_id);
            let mut gauges = crate::sync::lock(&self.gauges);
            gauges.outstanding = gauges.outstanding.saturating_sub(1);
            self.idle_cv.notify_all();
        }
    }

    fn send_to(&self, i: usize, frame: &[u8]) -> Result<(), SnapleError> {
        let conn = self.conns.get(i).ok_or_else(|| self.dead_error(i))?;
        let mut writer = crate::sync::lock(&conn.writer);
        match writer.as_mut() {
            Some(w) => {
                if let Err(e) = w.write_all(frame).and_then(|()| w.flush()) {
                    drop(writer);
                    self.mark_dead(i, &format!("write failed: {e}"));
                    return Err(self.dead_error(i));
                }
                Ok(())
            }
            None => {
                // The stream was closed (shard killed or shut down)
                // before the reader noticed — mark it dead now so no
                // slot is left waiting on a shard nothing will answer
                // for. Idempotent when the reader got there first.
                drop(writer);
                self.mark_dead(i, "shard connection closed");
                Err(self.dead_error(i))
            }
        }
    }

    fn dead_error(&self, i: usize) -> SnapleError {
        let dead = crate::sync::lock(&self.dead);
        SnapleError::ShardFailed {
            shard: i,
            message: dead
                .get(i)
                .and_then(Option::clone)
                .unwrap_or_else(|| "shard unavailable".to_string()),
        }
    }
}

/// The reader loop: one thread per shard, decoding replies and routing
/// them into the pending map. Exits on EOF; any transport or protocol
/// error marks the shard dead.
fn reader_loop<R: Read>(shared: &RouterShared, i: usize, mut stream: R) {
    let mut payload = Vec::new();
    loop {
        let tag = match super::wire::read_frame(&mut stream, &mut payload) {
            Ok(tag) => tag,
            Err(super::wire::WireError::Closed) => {
                // Clean close: only a failure if something still waits.
                shared.mark_dead(i, "shard connection closed");
                return;
            }
            Err(e) => {
                shared.mark_dead(i, &e.to_string());
                return;
            }
        };
        let reply = match Reply::decode(tag, &payload) {
            Ok(reply) => reply,
            Err(e) => {
                shared.mark_dead(i, &format!("corrupt reply: {e}"));
                return;
            }
        };
        match reply {
            Reply::Ready { num_vertices } => {
                {
                    let mut nv = crate::sync::lock(&shared.num_vertices);
                    *nv = (*nv).max(num_vertices);
                }
                let mut ready = crate::sync::lock(&shared.ready);
                if let Some(slot) = ready.get_mut(i) {
                    *slot = Some(Ok(num_vertices));
                }
                shared.ready_cv.notify_all();
            }
            Reply::Rows {
                request_id,
                num_vertices,
                rows,
                stats,
            } => {
                shared.complete(
                    i,
                    request_id,
                    |state| {
                        state.rows.extend(rows);
                        state.run_stats.push(stats);
                        state.num_vertices = state.num_vertices.max(num_vertices);
                    },
                    None,
                );
            }
            Reply::DeltaOk {
                request_id,
                num_vertices,
                stats,
            } => {
                {
                    let mut nv = crate::sync::lock(&shared.num_vertices);
                    *nv = (*nv).max(num_vertices);
                }
                shared.complete(
                    i,
                    request_id,
                    |state| {
                        state.delta_stats.push(stats);
                        state.num_vertices = state.num_vertices.max(num_vertices);
                    },
                    None,
                );
            }
            Reply::Err {
                request_id,
                message,
            } => {
                if request_id == 0 {
                    // Prepare-time failure.
                    let mut ready = crate::sync::lock(&shared.ready);
                    if let Some(slot) = ready.get_mut(i) {
                        if slot.is_none() {
                            *slot = Some(Err(message));
                        }
                    }
                    shared.ready_cv.notify_all();
                } else {
                    shared.complete(
                        i,
                        request_id,
                        |_| {},
                        Some(SnapleError::InvalidConfig(message)),
                    );
                }
            }
            Reply::Stats { stats } => {
                if let Some(slot) = crate::sync::lock(&shared.final_stats).get_mut(i) {
                    *slot = Some(*stats);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Handle and pending result.
// ---------------------------------------------------------------------------

/// The scatter-gather front end the [`ShardRouter::run`] body serves
/// through. Cheap to share across threads (`&self` methods only).
pub struct RouterHandle<'r> {
    shared: &'r RouterShared,
}

/// A submitted, not yet gathered, prediction — the shard-router analogue
/// of [`PendingPrediction`](crate::concurrent::PendingPrediction).
pub struct PendingRows {
    inner: PendingInner,
}

enum PendingInner {
    /// No shard was involved (empty query set): answer immediately.
    Empty {
        num_vertices: u64,
    },
    Waiting {
        slot: Arc<Slot>,
    },
}

impl PendingRows {
    /// Blocks until every involved shard answered, then merges the
    /// gathered rows into one full-width [`Prediction`] whose
    /// statistics are the shards' [`RunStats`] folded with
    /// [`RunStats::merge_parallel`].
    ///
    /// # Errors
    ///
    /// [`SnapleError::ShardFailed`] if an involved shard died;
    /// [`SnapleError::InvalidConfig`] if a shard rejected its
    /// sub-request (the original error's text, flattened).
    pub fn wait(self) -> Result<Prediction, SnapleError> {
        let slot = match self.inner {
            PendingInner::Empty { num_vertices } => {
                let rows = vec![Vec::new(); num_vertices as usize];
                return Ok(Prediction::from_parts(rows, RunStats::default()));
            }
            PendingInner::Waiting { slot } => slot,
        };
        let state = {
            let guard = crate::sync::lock(&slot.state);
            let mut guard = crate::sync::wait_while(&slot.cv, guard, |s| !s.done);
            std::mem::replace(
                &mut *guard,
                SlotState {
                    waiting: Vec::new(),
                    rows: Vec::new(),
                    run_stats: Vec::new(),
                    delta_stats: Vec::new(),
                    num_vertices: 0,
                    error: None,
                    done: true,
                },
            )
        };
        if let Some(e) = state.error {
            return Err(e);
        }
        let mut rows = vec![Vec::new(); state.num_vertices as usize];
        for (vertex, preds) in state.rows {
            let preds: Vec<(VertexId, f32)> = preds
                .into_iter()
                .map(|(v, s)| (VertexId::new(v), s))
                .collect();
            if let Some(row) = rows.get_mut(vertex as usize) {
                *row = preds;
            }
        }
        let stats = RunStats::merged_parallel(state.run_stats.iter()).unwrap_or_default();
        Ok(Prediction::from_parts(rows, stats))
    }
}

impl RouterHandle<'_> {
    /// Fail-fast check: the first already-dead shard among `involved`,
    /// as a typed [`SnapleError::ShardFailed`].
    fn first_dead_error(&self, involved: &[usize]) -> Option<SnapleError> {
        let dead = crate::sync::lock(&self.shared.dead);
        involved
            .iter()
            .find_map(|&i| {
                dead.get(i)
                    .and_then(Option::clone)
                    .map(|message| (i, message))
            })
            .map(|(shard, message)| SnapleError::ShardFailed { shard, message })
    }

    /// Scatters one query set across the owning shards and returns the
    /// pending gather; does not block on execution, so submissions
    /// pipeline across shards.
    ///
    /// # Errors
    ///
    /// [`SnapleError::ShardFailed`] immediately if a shard the request
    /// routes to is already dead.
    pub fn submit(&self, queries: &QuerySet) -> Result<PendingRows, SnapleError> {
        let shards = self.shared.conns.len();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for q in queries.iter() {
            // snaple-lint: allow(index) — shard_of is `hash % shards` and buckets has len shards
            buckets[self.shared.shard_of(q.as_u32())].push(q.as_u32());
        }
        let involved: Vec<usize> = (0..shards)
            .filter(|&i| buckets.get(i).is_some_and(|b| !b.is_empty()))
            .collect();
        {
            let mut gauges = crate::sync::lock(&self.shared.gauges);
            gauges.requests += 1;
            gauges.queries_received += queries.len();
        }
        if involved.is_empty() {
            let num_vertices = *crate::sync::lock(&self.shared.num_vertices);
            return Ok(PendingRows {
                inner: PendingInner::Empty { num_vertices },
            });
        }
        // Fail fast when a target shard is known dead.
        if let Some(e) = self.first_dead_error(&involved) {
            return Err(e);
        }
        let request_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        // Encode everything before registering the slot, so an encoding
        // failure cannot leave a pending entry behind (which would stall
        // `drain` forever).
        let mut frames = Vec::with_capacity(involved.len());
        for &i in &involved {
            let frame = Request::Predict {
                request_id,
                // snaple-lint: allow(index) — `involved` holds indexes into buckets by construction
                queries: std::mem::take(&mut buckets[i]),
            }
            .encode()
            .map_err(|e| SnapleError::InvalidConfig(format!("encoding sub-request: {e}")))?;
            frames.push((i, frame));
        }
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState {
                waiting: involved,
                rows: Vec::new(),
                run_stats: Vec::new(),
                delta_stats: Vec::new(),
                num_vertices: 0,
                error: None,
                done: false,
            }),
            cv: Condvar::new(),
        });
        {
            crate::sync::lock(&self.shared.pending).insert(request_id, Arc::clone(&slot));
            crate::sync::lock(&self.shared.gauges).outstanding += 1;
        }
        for (i, frame) in &frames {
            // A failed send marks the shard dead, which fails this very
            // slot — wait() will surface the ShardFailed error.
            let _ = self.shared.send_to(*i, frame);
        }
        Ok(PendingRows {
            inner: PendingInner::Waiting { slot },
        })
    }

    /// Scatters, gathers, and merges one request: `submit(...).wait()`.
    ///
    /// # Errors
    ///
    /// As [`RouterHandle::submit`] and [`PendingRows::wait`].
    pub fn serve(&self, queries: &QuerySet) -> Result<Prediction, SnapleError> {
        self.submit(queries)?.wait()
    }

    /// Broadcasts a graph delta to every shard and waits until all of
    /// them published the post-delta epoch, so subsequent requests on
    /// this handle see the update on every shard.
    ///
    /// # Errors
    ///
    /// [`SnapleError::ShardFailed`] if any shard is dead or dies during
    /// the update; [`SnapleError::InvalidConfig`] if a shard rejects the
    /// delta.
    pub fn apply_update(&self, delta: &GraphDelta) -> Result<DeltaStats, SnapleError> {
        let shards = self.shared.conns.len();
        let involved: Vec<usize> = (0..shards).collect();
        if let Some(e) = self.first_dead_error(&involved) {
            return Err(e);
        }
        let ops: Vec<(u32, u32, f32, bool)> = delta.ops().collect();
        let request_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Request::Delta { request_id, ops }
            .encode()
            .map_err(|e| SnapleError::InvalidConfig(format!("encoding delta: {e}")))?;
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState {
                waiting: involved.clone(),
                rows: Vec::new(),
                run_stats: Vec::new(),
                delta_stats: Vec::new(),
                num_vertices: 0,
                error: None,
                done: false,
            }),
            cv: Condvar::new(),
        });
        {
            crate::sync::lock(&self.shared.pending).insert(request_id, Arc::clone(&slot));
            crate::sync::lock(&self.shared.gauges).outstanding += 1;
        }
        for &i in &involved {
            let _ = self.shared.send_to(i, &frame);
        }
        let (error, all) = {
            let guard = crate::sync::lock(&slot.state);
            let mut guard = crate::sync::wait_while(&slot.cv, guard, |s| !s.done);
            (guard.error.take(), std::mem::take(&mut guard.delta_stats))
        };
        if let Some(e) = error {
            return Err(e);
        }
        // Every shard applied the same delta to an identical snapshot:
        // effect counters agree, wall times overlap — report the
        // logical counts once and the slowest shard's wall.
        let mut merged = all.first().cloned().unwrap_or_default();
        for s in all.iter().skip(1) {
            merged.touched_partitions = merged.touched_partitions.max(s.touched_partitions);
            merged.apply_wall_seconds = merged.apply_wall_seconds.max(s.apply_wall_seconds);
        }
        {
            let mut gauges = crate::sync::lock(&self.shared.gauges);
            gauges.updates += 1;
            gauges.edges_inserted += merged.inserted_edges;
            gauges.edges_removed += merged.removed_edges;
        }
        self.shared.epoch.fetch_add(1, Ordering::Release);
        Ok(merged)
    }

    /// The number of delta epochs published so far (0 = the initial
    /// prepared snapshot).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Blocks until no scattered request is outstanding — including when
    /// shards died: their in-flight requests fail, they never linger.
    pub fn drain(&self) {
        let gauges = crate::sync::lock(&self.shared.gauges);
        let _unused = crate::sync::wait_while(&self.shared.idle_cv, gauges, |g| g.outstanding > 0);
    }

    /// Fault-injection hook: hard-kills shard `i` — SIGKILL to the child
    /// process (process transport) plus closing the router's command
    /// stream — *without* telling the router's bookkeeping. The router
    /// must **detect** the death through its reader (EOF / broken
    /// pipe), fail anything pending on the shard with
    /// [`SnapleError::ShardFailed`], and keep [`RouterHandle::drain`]
    /// able to complete; tests assert exactly that.
    pub fn kill_shard(&self, i: usize) {
        let Some(conn) = self.shared.conns.get(i) else {
            return;
        };
        if let Some(child) = crate::sync::lock(&conn.child).as_mut() {
            let _ = child.kill();
        }
        *crate::sync::lock(&conn.writer) = None;
    }

    /// Which shard owns `vertex` — the scatter routing function, exposed
    /// for tests and diagnostics.
    pub fn shard_of(&self, vertex: u32) -> usize {
        self.shared.shard_of(vertex)
    }
}

// ---------------------------------------------------------------------------
// The router runner.
// ---------------------------------------------------------------------------

/// The shard-per-process (or per-thread) serving deployment;
/// [`ShardRouter::run`] is the entry point.
pub struct ShardRouter;

impl ShardRouter {
    /// Stands up `options.shards()` shard runtimes, prepares each on its
    /// own copy of `graph`, runs `body` against the scatter-gather
    /// [`RouterHandle`], then shuts the fleet down and returns the
    /// merged statistics.
    ///
    /// Rows served through the handle are **bit-identical** to a
    /// single-process [`ConcurrentServer`](crate::concurrent::ConcurrentServer)
    /// serving the same spec, graph, and seed: sub-queries run as masked
    /// runs (exact by construction) and partition disjointly across
    /// shards.
    ///
    /// # Errors
    ///
    /// [`SnapleError::Engine`] for unusable shard counts (zero, or more
    /// shards than the cluster has partitions);
    /// [`SnapleError::InvalidConfig`] if the graph cannot be serialized
    /// or a shard rejects the spec; [`SnapleError::ShardFailed`] if a
    /// shard dies during preparation.
    pub fn run<R>(
        spec: &ShardSpec,
        graph: &dyn GraphStore,
        cluster: &ClusterSpec,
        options: ShardOptions,
        body: impl FnOnce(&RouterHandle<'_>) -> R,
    ) -> Result<ShardOutcome<R>, SnapleError> {
        let assignment = ShardAssignment::new(cluster.nodes, options.shards)?;
        let shards = options.shards;
        let setup_started = Instant::now();
        let mut blob = Vec::new();
        snaple_graph::io::write_binary(graph, &mut blob)
            .map_err(|e| SnapleError::InvalidConfig(format!("serializing shard graph: {e}")))?;

        // Stand up the transports.
        let mut conns = Vec::with_capacity(shards);
        let mut reply_streams: Vec<Box<dyn Read + Send>> = Vec::with_capacity(shards);
        let mut shard_threads = Vec::new();
        match options.transport {
            ShardTransport::Threads => {
                for _ in 0..shards {
                    let (cmd_tx, cmd_rx) = mpsc::channel::<Vec<u8>>();
                    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
                    shard_threads.push(std::thread::spawn(move || {
                        // A transport error is already surfaced router-side
                        // as a dead shard; nothing to do with it here.
                        let _ = serve_connection(
                            ChannelReader::new(cmd_rx),
                            ChannelWriter::new(reply_tx),
                        );
                    }));
                    conns.push(ShardConn {
                        writer: Mutex::new(Some(
                            Box::new(ChannelWriter::new(cmd_tx)) as Box<dyn Write + Send>
                        )),
                        child: Mutex::new(None),
                    });
                    reply_streams.push(Box::new(ChannelReader::new(reply_rx)));
                }
            }
            ShardTransport::Processes => {
                let shardd = match &options.shardd {
                    Some(path) => path.clone(),
                    None => process::shardd_path().map_err(SnapleError::InvalidConfig)?,
                };
                for i in 0..shards {
                    let (child, stdin, stdout) =
                        process::spawn_shard(&shardd).map_err(|e| SnapleError::ShardFailed {
                            shard: i,
                            message: e,
                        })?;
                    conns.push(ShardConn {
                        writer: Mutex::new(Some(Box::new(stdin) as Box<dyn Write + Send>)),
                        child: Mutex::new(Some(child)),
                    });
                    reply_streams.push(Box::new(BufReader::new(stdout)));
                }
            }
        }

        let shared = RouterShared {
            conns,
            assignment,
            ownership_seed: spec.seed(),
            next_id: AtomicU64::new(1),
            epoch: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            gauges: Mutex::new(Gauges::default()),
            idle_cv: Condvar::new(),
            dead: Mutex::new(vec![None; shards]),
            ready: Mutex::new(vec![None; shards]),
            ready_cv: Condvar::new(),
            final_stats: Mutex::new(vec![None; shards]),
            num_vertices: Mutex::new(graph.num_vertices() as u64),
        };

        let run_result = std::thread::scope(|scope| {
            for (i, stream) in reply_streams.into_iter().enumerate() {
                let shared = &shared;
                scope.spawn(move || reader_loop(shared, i, stream));
            }
            // Whatever happens below — including panics in `body` — the
            // guard closes every command stream on the way out, which
            // lets shards and reader threads exit and the scope join.
            let _close = CloseConnsGuard { shared: &shared };

            // Scatter the Prepare frames.
            for i in 0..shards {
                let frame = Request::Prepare(Box::new(super::wire::PrepareShard {
                    shard: i as u32,
                    num_shards: shards as u32,
                    seed_override: options.seed,
                    spec: spec.clone(),
                    cluster: cluster.clone(),
                    graph_blob: blob.clone(),
                }))
                .encode()
                .map_err(|e| SnapleError::InvalidConfig(format!("encoding shard prepare: {e}")))?;
                let _ = shared.send_to(i, &frame);
            }
            // Gather readiness.
            {
                let ready = crate::sync::lock(&shared.ready);
                let ready = crate::sync::wait_while(&shared.ready_cv, ready, |r| {
                    r.iter().any(Option::is_none)
                });
                for (i, r) in ready.iter().enumerate() {
                    if let Some(Err(message)) = r {
                        return Err(SnapleError::ShardFailed {
                            shard: i,
                            message: message.clone(),
                        });
                    }
                }
            }
            let setup_wall_seconds = setup_started.elapsed().as_secs_f64();

            let serve_started = Instant::now();
            let handle = RouterHandle { shared: &shared };
            let value = body(&handle);
            handle.drain();
            // Orderly shutdown: ask each live shard for its stats...
            let shutdown = Request::Shutdown
                .encode()
                .map_err(|e| SnapleError::InvalidConfig(format!("encoding shutdown: {e}")))?;
            for i in 0..shards {
                let _ = shared.send_to(i, &shutdown);
            }
            // ...then close the command streams (via the guard on scope
            // exit); readers drain the Stats replies and exit on EOF.
            Ok((value, setup_wall_seconds, serve_started))
        });
        let (value, setup_wall_seconds, serve_started) = run_result?;
        let serve_wall_seconds = serve_started.elapsed().as_secs_f64();

        // Reap process-transport children.
        for conn in &shared.conns {
            if let Some(mut child) = crate::sync::lock(&conn.child).take() {
                let _ = child.wait();
            }
        }
        for t in shard_threads {
            let _ = t.join();
        }

        // Merge the fleet's statistics.
        let mut stats = ServerStats::default();
        for shard_stats in crate::sync::lock(&shared.final_stats).iter().flatten() {
            stats.merge_parallel(shard_stats);
        }
        let gauges = crate::sync::into_inner(shared.gauges);
        stats.requests = gauges.requests;
        stats.batches = gauges.requests;
        stats.queries_received = gauges.queries_received;
        stats.updates = gauges.updates;
        stats.edges_inserted = gauges.edges_inserted;
        stats.edges_removed = gauges.edges_removed;
        stats.setup_wall_seconds = setup_wall_seconds;
        stats.serve_wall_seconds = serve_wall_seconds;
        stats.workers = shards;
        Ok(ShardOutcome { value, stats })
    }
}

/// Closes every shard command stream when dropped, so shards see EOF,
/// exit, and let the reader threads (and the thread scope) finish — the
/// teardown path shared by normal returns, setup errors, and body
/// panics.
struct CloseConnsGuard<'r> {
    shared: &'r RouterShared,
}

impl Drop for CloseConnsGuard<'_> {
    fn drop(&mut self) {
        for conn in &self.shared.conns {
            *crate::sync::lock(&conn.writer) = None;
        }
    }
}
