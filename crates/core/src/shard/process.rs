//! The OS-process shard transport: each shard is a child process
//! speaking the wire protocol over its stdin/stdout pipes.
//!
//! The child side is [`child_main`] — a thin wrapper that runs
//! [`super::runtime::serve_connection`] over the process's standard
//! streams; the `snaple-shardd` binary is nothing but a call to it. The
//! parent side is [`spawn_shard`], which locates the daemon binary
//! ([`shardd_path`]), spawns it with piped streams, and hands the pipes
//! to the router's writer/reader machinery.
//!
//! A dead child is detected exactly like a corrupt stream: the parent's
//! reader hits EOF or a broken pipe mid-protocol, and the router turns
//! that into [`crate::SnapleError::ShardFailed`] for every in-flight
//! request routed to that shard.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use super::runtime::serve_connection;

/// Environment variable overriding where the `snaple-shardd` binary is
/// found, checked before the `current_exe`-sibling heuristics.
pub const SHARDD_ENV: &str = "SNAPLE_SHARDD";

/// The shard daemon's binary name.
pub const SHARDD_BIN: &str = "snaple-shardd";

/// Runs the shard daemon over this process's stdin/stdout, returning the
/// process exit code: `0` after a clean shutdown or peer close, `1` on a
/// wire/transport error (which is also printed to stderr).
///
/// This is the entire body of the `snaple-shardd` binary.
pub fn child_main() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match serve_connection(stdin.lock(), stdout.lock()) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "snaple-shardd: {e}");
            1
        }
    }
}

/// Locates the `snaple-shardd` binary: the [`SHARDD_ENV`] environment
/// variable wins; otherwise the binary is looked up next to the current
/// executable, then in its parent directory (covering test binaries,
/// which live one level down in `target/<profile>/deps/`).
///
/// # Errors
///
/// A human-readable message when no candidate exists on disk.
pub fn shardd_path() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var(SHARDD_ENV) {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!(
            "{SHARDD_ENV} points to {}, which does not exist",
            path.display()
        ));
    }
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate current executable: {e}"))?;
    let mut candidates = Vec::new();
    if let Some(dir) = exe.parent() {
        candidates.push(dir.join(SHARDD_BIN));
        if let Some(parent) = dir.parent() {
            candidates.push(parent.join(SHARDD_BIN));
        }
    }
    for c in &candidates {
        if c.is_file() {
            return Ok(c.clone());
        }
    }
    Err(format!(
        "cannot find the {SHARDD_BIN} binary (searched {}); build it with \
         `cargo build --bin {SHARDD_BIN}` or set {SHARDD_ENV}",
        candidates
            .iter()
            .map(|c| c.display().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ))
}

/// Spawns one shard daemon with piped stdin/stdout (stderr is inherited,
/// so shard-side diagnostics reach the parent's terminal).
///
/// # Errors
///
/// A message when the spawn fails or a pipe is missing.
pub fn spawn_shard(shardd: &Path) -> Result<(Child, ChildStdin, ChildStdout), String> {
    let mut child = Command::new(shardd)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning {}: {e}", shardd.display()))?;
    let stdin = child
        .stdin
        .take()
        .ok_or_else(|| "shard child has no stdin pipe".to_string())?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| "shard child has no stdout pipe".to_string())?;
    Ok((child, stdin, stdout))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shardd_path_respects_missing_env_gracefully() {
        // Whatever the environment, the resolver must return a typed
        // result, never panic. (The binary itself may or may not be
        // built when unit tests run.)
        let _ = shardd_path();
    }
}
