//! Shard-per-process distributed serving: shard runtimes, a binary wire
//! protocol, and a scatter-gather router.
//!
//! This module splits the serving runtime into `N` independent
//! **shards**, each an isolated full runtime (graph snapshot, prepared
//! predictor, statistics), fronted by a [`ShardRouter`] that scatters
//! requests and gathers replies. It is the single-machine stand-in for
//! the paper's scale-out story: the same serving API, but with the
//! request path crossing real process (or channel) boundaries through a
//! real serialized protocol.
//!
//! # Topology
//!
//! The cluster's `P` partitions are divided into `N` contiguous blocks
//! ([`ShardAssignment`](snaple_gas::ShardAssignment)); shard `i` *owns*
//! the vertices whose **master partition** falls in block `i`. The
//! master placement is a pure hash of the spec's seed
//! ([`master_node`](snaple_gas::master_node)), so the router can route
//! any vertex without consulting the shards — and the routing stays
//! stable as deltas grow the graph. Requests **scatter**: each queried
//! vertex goes to its one owning shard, sub-queries are disjoint, and
//! the gathered rows union into exactly what one big server would
//! produce (sub-queries run as masked supersteps, which are exact by
//! construction). Updates **broadcast**: every shard folds the same
//! [`GraphDelta`](snaple_graph::GraphDelta) into its snapshot as a
//! shard-local epoch swap, keeping all replicas identical.
//!
//! # Wire framing
//!
//! Shards speak a length-prefixed, checksummed binary protocol
//! ([`wire`]); one message per frame:
//!
//! ```text
//! +----+----+-----+----------+---------+----------+
//! | 'S' | 'L' | tag | len: u32 | payload | crc: u32 |
//! +----+----+-----+----------+---------+----------+
//!        magic      LE, <= 1 GiB          CRC-32 over tag+len+payload
//! ```
//!
//! Requests are `Prepare`, `Predict`, `Delta`, `Shutdown`; replies are
//! `Ready`, `Rows`, `DeltaOk`, `Err`, `Stats`. Scores cross the wire as
//! raw `f32` bits, so serving through shards is bit-identical to
//! serving in-process. The decoder never trusts the peer: truncated
//! frames, corrupt checksums, oversized length prefixes, and unknown
//! tags all surface as typed [`WireError`]s — payloads are read in
//! bounded chunks, so a lying length prefix cannot balloon memory.
//!
//! # Threads vs. processes
//!
//! Both transports exchange *identical* frames through one generic
//! connection loop ([`runtime::serve_connection`]):
//!
//! * [`ShardTransport::Threads`] (default) hosts each shard on a thread
//!   of this process, with frames travelling over in-memory channels.
//!   Zero deployment overhead; no isolation.
//! * [`ShardTransport::Processes`] spawns one `snaple-shardd` child per
//!   shard and speaks over its stdin/stdout pipes. Full OS isolation: a
//!   crashing shard becomes a typed
//!   [`SnapleError::ShardFailed`](crate::SnapleError::ShardFailed) on
//!   the affected requests, never a router crash or a hang — the router
//!   detects the broken pipe, fails in-flight requests routed to the
//!   dead shard, rejects new ones, and
//!   [`RouterHandle::drain`] still completes.
//!
//! # Example
//!
//! ```no_run
//! use snaple_core::shard::{ShardOptions, ShardRouter, ShardSpec, ShardTransport};
//! use snaple_core::{NamedScore, QuerySet, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::CsrGraph;
//!
//! let graph = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
//! let spec = ShardSpec::Single(SnapleConfig::new(NamedScore::LinearSum));
//! let outcome = ShardRouter::run(
//!     &spec,
//!     &graph,
//!     &ClusterSpec::type_i(8),
//!     ShardOptions::new().shards(4).transport(ShardTransport::Threads),
//!     |handle| handle.serve(&QuerySet::from_indices([0, 2])),
//! )?;
//! let prediction = outcome.value?;
//! println!("served {} requests", outcome.stats.requests);
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

pub mod process;
pub mod router;
pub mod runtime;
pub mod wire;

pub use router::{
    PendingRows, RouterHandle, ShardOptions, ShardOutcome, ShardRouter, ShardTransport,
};
pub use wire::{ShardSpec, WireError};
