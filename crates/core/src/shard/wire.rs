//! The shard wire protocol: length-prefixed, checksummed binary frames.
//!
//! Both shard transports — in-process channels and OS-process pipes —
//! exchange **identical serialized frames**, so one codec defines the
//! protocol and one serve loop ([`super::runtime`]) speaks it regardless
//! of what carries the bytes.
//!
//! # Frame layout
//!
//! ```text
//! ┌──────┬─────┬──────────┬───────────────┬───────────┐
//! │ "SL" │ tag │ len: u32 │ payload (len) │ crc32: u32│
//! │ 2 B  │ 1 B │ LE       │               │ LE        │
//! └──────┴─────┴──────────┴───────────────┴───────────┘
//! ```
//!
//! The CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) covers `tag`,
//! `len`, and the payload, so a flipped bit anywhere after the magic is
//! detected. `len` is capped at [`MAX_FRAME_LEN`]; a larger prefix is
//! rejected *before* any allocation, and payload bytes are read in
//! bounded chunks so even an in-cap lying prefix on a truncated stream
//! never balloons memory. Every malformed input maps to a typed
//! [`WireError`] — the codec never panics.
//!
//! # Messages
//!
//! Router → shard: [`Request::Prepare`], [`Request::Predict`],
//! [`Request::Delta`], [`Request::Shutdown`]. Shard → router:
//! [`Reply::Ready`], [`Reply::Rows`], [`Reply::DeltaOk`],
//! [`Reply::Err`], [`Reply::Stats`]. Scores travel as raw `f32` bits
//! (`to_bits`/`from_bits`), so a row that crosses the wire is
//! bit-identical to one that never left the process.

use std::error::Error as StdError;
use std::fmt;
use std::io::{Read, Write};

use snaple_gas::{ClusterSpec, DeltaStats, NodeStats, RunStats, StepStats};

use crate::config::{NamedScore, PathLength, SelectionPolicy, SnapleConfig};
use crate::plan::PlanConfig;
use crate::serve::{LatencyHistogram, ServerStats};
use snaple_gas::PartitionStrategy;

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"SL";

/// Upper bound on a frame's payload length (1 GiB). A length prefix
/// beyond this is rejected as [`WireError::FrameTooLarge`] before any
/// allocation happens — the cap is what makes a corrupt or hostile
/// length prefix harmless.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Payloads are read in chunks of this size, so a lying in-cap length
/// prefix on a short stream errors out after at most one chunk of
/// over-allocation instead of reserving the full advertised length.
const READ_CHUNK: usize = 64 * 1024;

// Request tags (router → shard).
const TAG_PREPARE: u8 = 1;
const TAG_PREDICT: u8 = 2;
const TAG_DELTA: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;
// Reply tags (shard → router).
const TAG_ROWS_OK: u8 = 16;
const TAG_DELTA_OK: u8 = 17;
const TAG_ERR: u8 = 18;
const TAG_READY: u8 = 19;
const TAG_STATS_OK: u8 = 20;

/// Everything that can go wrong on the wire. Every variant is a typed,
/// non-panicking error; transport-level variants ([`WireError::Io`],
/// [`WireError::Closed`], [`WireError::Truncated`],
/// [`WireError::BadChecksum`]) mean the connection is unusable, while
/// [`WireError::UnknownTag`] and [`WireError::Malformed`] indicate a
/// protocol bug or version skew.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly (EOF on a frame boundary).
    Closed,
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 2]),
    /// The checksum did not match — the frame was corrupted in transit.
    BadChecksum {
        /// CRC-32 carried by the frame.
        expected: u32,
        /// CRC-32 computed over the received bytes.
        computed: u32,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The advertised payload length.
        len: u64,
    },
    /// The frame tag is not part of the protocol.
    UnknownTag(u8),
    /// The payload did not decode as the message its tag promises.
    Malformed(&'static str),
    /// An underlying I/O error (broken pipe, dead child process, ...).
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "stream truncated mid-frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadChecksum { expected, computed } => write!(
                f,
                "frame checksum mismatch: frame says {expected:#010x}, computed {computed:#010x}"
            ),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(msg) => write!(f, "wire i/o error: {msg}"),
        }
    }
}

impl StdError for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io(e.to_string()),
        }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE) — the shared implementation in `snaple_graph::codec`,
// re-exported so wire users keep one import path.
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 / zlib) of `data`, resumable via `seed` (pass the
/// previous return value to continue over a split buffer; start at 0).
///
/// This is [`snaple_graph::codec::crc32`] — the same checksum guards the
/// shard frames and the durability commitlog frames.
pub use snaple_graph::codec::crc32;

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

/// Encodes one complete frame into a byte vector: magic, tag, length,
/// payload, checksum.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the payload exceeds [`MAX_FRAME_LEN`].
pub fn encode_frame(tag: u8, payload: &[u8]) -> Result<Vec<u8>, WireError> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    let len = payload.len() as u32;
    let mut frame = Vec::with_capacity(2 + 1 + 4 + payload.len() + 4);
    frame.extend_from_slice(&MAGIC);
    frame.push(tag);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = crc32(0, &frame[2..]); // snaple-lint: allow(index) — frame starts with the 2-byte magic pushed above
    frame.extend_from_slice(&crc.to_le_bytes());
    Ok(frame)
}

/// Writes one frame and flushes, as a single `write_all` so interleaving
/// writers on the same pipe cannot shear a frame.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> Result<(), WireError> {
    let frame = encode_frame(tag, payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, returning its tag and filling `payload` (cleared
/// first) with the verified payload bytes.
///
/// # Errors
///
/// [`WireError::Closed`] on clean EOF before any frame byte;
/// [`WireError::Truncated`] on EOF inside a frame; [`WireError::BadMagic`],
/// [`WireError::FrameTooLarge`], [`WireError::BadChecksum`] on the
/// corresponding corruptions; [`WireError::Io`] for transport failures.
pub fn read_frame<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> Result<u8, WireError> {
    payload.clear();
    // Magic: distinguish clean EOF (no bytes at all) from truncation.
    let mut magic = [0u8; 2];
    let mut got = 0;
    while got < 2 {
        // snaple-lint: allow(index) — loop guard keeps got < 2 = magic.len()
        match r.read(&mut magic[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let [tag, l0, l1, l2, l3] = head;
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    // Chunked payload read: never reserve more than one chunk beyond the
    // bytes actually received, so a lying length prefix cannot force a
    // huge allocation on a short stream.
    let mut remaining = len as usize;
    let mut chunk = [0u8; READ_CHUNK];
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        // snaple-lint: allow(index) — take = min(remaining, READ_CHUNK) never exceeds chunk.len()
        r.read_exact(&mut chunk[..take])?;
        // snaple-lint: allow(index) — same bound as the read_exact above
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let expected = u32::from_le_bytes(crc_bytes);
    let computed = crc32(crc32(0, &head), payload);
    if expected != computed {
        return Err(WireError::BadChecksum { expected, computed });
    }
    Ok(tag)
}

// ---------------------------------------------------------------------------
// Primitive payload (de)serialization.
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_u64(out, x);
        }
    }
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn short(what: &'static str) -> WireError {
    WireError::Malformed(what)
}

fn get_u8(input: &mut &[u8], what: &'static str) -> Result<u8, WireError> {
    let (&b, rest) = input.split_first().ok_or(short(what))?;
    *input = rest;
    Ok(b)
}
fn get_u32(input: &mut &[u8], what: &'static str) -> Result<u32, WireError> {
    let (head, rest) = input.split_first_chunk::<4>().ok_or(short(what))?;
    *input = rest;
    Ok(u32::from_le_bytes(*head))
}
fn get_u64(input: &mut &[u8], what: &'static str) -> Result<u64, WireError> {
    let (head, rest) = input.split_first_chunk::<8>().ok_or(short(what))?;
    *input = rest;
    Ok(u64::from_le_bytes(*head))
}
fn get_f32(input: &mut &[u8], what: &'static str) -> Result<f32, WireError> {
    Ok(f32::from_bits(get_u32(input, what)?))
}
fn get_f64(input: &mut &[u8], what: &'static str) -> Result<f64, WireError> {
    Ok(f64::from_bits(get_u64(input, what)?))
}
fn get_str(input: &mut &[u8], what: &'static str) -> Result<String, WireError> {
    let len = get_u32(input, what)? as usize;
    if input.len() < len {
        return Err(short(what));
    }
    let (s, rest) = input.split_at(len);
    *input = rest;
    String::from_utf8(s.to_vec()).map_err(|_| short(what))
}
fn get_opt_u64(input: &mut &[u8], what: &'static str) -> Result<Option<u64>, WireError> {
    match get_u8(input, what)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64(input, what)?)),
        _ => Err(short(what)),
    }
}
fn get_bytes(input: &mut &[u8], what: &'static str) -> Result<Vec<u8>, WireError> {
    let len = get_u64(input, what)? as usize;
    if input.len() < len {
        return Err(short(what));
    }
    let (b, rest) = input.split_at(len);
    *input = rest;
    Ok(b.to_vec())
}

/// Reads a element count and guards it against the remaining payload
/// size: each element needs at least `min_elem_bytes`, so a lying count
/// cannot drive an over-allocation — the check rejects it up front.
fn get_count(
    input: &mut &[u8],
    min_elem_bytes: usize,
    what: &'static str,
) -> Result<usize, WireError> {
    let n = get_u32(input, what)? as usize;
    if n.saturating_mul(min_elem_bytes) > input.len() {
        return Err(short(what));
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// Predictor specification.
// ---------------------------------------------------------------------------

/// A serializable description of the predictor every shard must build —
/// the wire stand-in for the `&dyn Predictor` that an in-process server
/// borrows.
///
/// Only *nameable* predictors cross the wire: a [`SnapleConfig`] whose
/// score is a [`NamedScore`], or a score plan given as spec strings
/// (re-parsed by [`crate::spec::ScoreSpec::parse`] on the far side).
/// Predictors built from custom [`crate::ScoreComponents`] closures have
/// no serialized form and cannot be served by an OS-process shard.
#[derive(Clone, Debug)]
pub enum ShardSpec {
    /// A single scoring configuration ([`crate::Snaple`]).
    Single(SnapleConfig),
    /// A fused multi-score plan ([`crate::ScorePlan`]); rows are served
    /// from the plan's combined top-k column.
    Plan {
        /// One compact spec string per column (the [`crate::spec`]
        /// grammar).
        specs: Vec<String>,
        /// Plan-wide execution parameters.
        config: PlanConfig,
    },
}

impl ShardSpec {
    /// The seed that drives the spec's partition build — and therefore
    /// the master-placement hash the router's vertex→shard ownership map
    /// must agree with.
    pub fn seed(&self) -> u64 {
        match self {
            ShardSpec::Single(c) => c.seed,
            ShardSpec::Plan { config, .. } => config.seed,
        }
    }
}

fn put_selection(out: &mut Vec<u8>, s: SelectionPolicy) {
    put_u8(
        out,
        match s {
            SelectionPolicy::Max => 0,
            SelectionPolicy::Min => 1,
            SelectionPolicy::Random => 2,
        },
    );
}
fn get_selection(input: &mut &[u8]) -> Result<SelectionPolicy, WireError> {
    Ok(match get_u8(input, "selection policy")? {
        0 => SelectionPolicy::Max,
        1 => SelectionPolicy::Min,
        2 => SelectionPolicy::Random,
        _ => return Err(short("selection policy")),
    })
}
fn put_partition(out: &mut Vec<u8>, p: PartitionStrategy) {
    put_u8(
        out,
        match p {
            PartitionStrategy::RandomVertexCut => 0,
            PartitionStrategy::SourceHash1D => 1,
            PartitionStrategy::GreedyVertexCut => 2,
        },
    );
}
fn get_partition(input: &mut &[u8]) -> Result<PartitionStrategy, WireError> {
    Ok(match get_u8(input, "partition strategy")? {
        0 => PartitionStrategy::RandomVertexCut,
        1 => PartitionStrategy::SourceHash1D,
        2 => PartitionStrategy::GreedyVertexCut,
        _ => return Err(short("partition strategy")),
    })
}
fn put_path_length(out: &mut Vec<u8>, p: PathLength) {
    put_u8(out, if p == PathLength::Three { 3 } else { 2 });
}
fn get_path_length(input: &mut &[u8]) -> Result<PathLength, WireError> {
    Ok(match get_u8(input, "path length")? {
        2 => PathLength::Two,
        3 => PathLength::Three,
        _ => return Err(short("path length")),
    })
}

fn put_spec(out: &mut Vec<u8>, spec: &ShardSpec) {
    match spec {
        ShardSpec::Single(c) => {
            put_u8(out, 0);
            put_str(out, c.score.name());
            put_u64(out, c.k as u64);
            put_opt_u64(out, c.klocal.map(|v| v as u64));
            put_opt_u64(out, c.thr_gamma.map(|v| v as u64));
            put_f32(out, c.alpha);
            put_selection(out, c.selection);
            put_u64(out, c.seed);
            put_partition(out, c.partition);
            put_path_length(out, c.path_length);
        }
        ShardSpec::Plan { specs, config } => {
            put_u8(out, 1);
            put_u32(out, specs.len() as u32);
            for s in specs {
                put_str(out, s);
            }
            put_u64(out, config.k as u64);
            put_opt_u64(out, config.klocal.map(|v| v as u64));
            put_opt_u64(out, config.thr_gamma.map(|v| v as u64));
            put_selection(out, config.selection);
            put_u64(out, config.seed);
            put_partition(out, config.partition);
            put_path_length(out, config.path_length);
        }
    }
}

fn get_spec(input: &mut &[u8]) -> Result<ShardSpec, WireError> {
    match get_u8(input, "spec kind")? {
        0 => {
            let name = get_str(input, "score name")?;
            let score = NamedScore::parse(&name).ok_or(short("score name"))?;
            let k = get_u64(input, "spec k")? as usize;
            let klocal = get_opt_u64(input, "spec klocal")?.map(|v| v as usize);
            let thr_gamma = get_opt_u64(input, "spec thr_gamma")?.map(|v| v as usize);
            let alpha = get_f32(input, "spec alpha")?;
            let selection = get_selection(input)?;
            let seed = get_u64(input, "spec seed")?;
            let partition = get_partition(input)?;
            let path_length = get_path_length(input)?;
            let mut config = SnapleConfig::new(score)
                .k(k)
                .klocal(klocal)
                .thr_gamma(thr_gamma)
                .alpha(alpha)
                .selection(selection)
                .seed(seed)
                .partition(partition);
            config.path_length = path_length;
            Ok(ShardSpec::Single(config))
        }
        1 => {
            let n = get_count(input, 4, "plan spec count")?;
            let mut specs = Vec::with_capacity(n);
            for _ in 0..n {
                specs.push(get_str(input, "plan spec string")?);
            }
            let mut config = PlanConfig::new();
            config.k = get_u64(input, "plan k")? as usize;
            config.klocal = get_opt_u64(input, "plan klocal")?.map(|v| v as usize);
            config.thr_gamma = get_opt_u64(input, "plan thr_gamma")?.map(|v| v as usize);
            config.selection = get_selection(input)?;
            config.seed = get_u64(input, "plan seed")?;
            config.partition = get_partition(input)?;
            config.path_length = get_path_length(input)?;
            Ok(ShardSpec::Plan { specs, config })
        }
        _ => Err(short("spec kind")),
    }
}

// ---------------------------------------------------------------------------
// Stats (de)serialization.
// ---------------------------------------------------------------------------

fn put_run_stats(out: &mut Vec<u8>, s: &RunStats) {
    put_u32(out, s.steps.len() as u32);
    for step in &s.steps {
        put_str(out, &step.name);
        put_u64(out, step.gather_calls);
        put_u64(out, step.sum_calls);
        put_u64(out, step.apply_calls);
        put_u64(out, step.work_ops);
        put_u64(out, step.broadcast_bytes);
        put_u64(out, step.partial_bytes);
        put_f64(out, step.simulated_seconds);
        put_u32(out, step.per_node.len() as u32);
        for n in &step.per_node {
            put_u64(out, n.compute_ops);
            put_u64(out, n.net_bytes);
            put_u64(out, n.memory_peak);
        }
    }
    put_f64(out, s.replication_factor);
    put_f64(out, s.partition_build_seconds);
    put_f64(out, s.delta_apply_seconds);
    put_u64(out, s.delta_touched_partitions as u64);
}

fn get_run_stats(input: &mut &[u8]) -> Result<RunStats, WireError> {
    let nsteps = get_count(input, 8, "run stats step count")?;
    let mut steps = Vec::with_capacity(nsteps);
    for _ in 0..nsteps {
        let name = get_str(input, "step name")?;
        let gather_calls = get_u64(input, "step gathers")?;
        let sum_calls = get_u64(input, "step sums")?;
        let apply_calls = get_u64(input, "step applies")?;
        let work_ops = get_u64(input, "step work")?;
        let broadcast_bytes = get_u64(input, "step broadcast")?;
        let partial_bytes = get_u64(input, "step partials")?;
        let simulated_seconds = get_f64(input, "step simulated")?;
        let nnodes = get_count(input, 24, "step node count")?;
        let mut per_node = Vec::with_capacity(nnodes);
        for _ in 0..nnodes {
            per_node.push(NodeStats {
                compute_ops: get_u64(input, "node compute")?,
                net_bytes: get_u64(input, "node net")?,
                memory_peak: get_u64(input, "node mem")?,
            });
        }
        steps.push(StepStats {
            name,
            gather_calls,
            sum_calls,
            apply_calls,
            work_ops,
            broadcast_bytes,
            partial_bytes,
            per_node,
            simulated_seconds,
        });
    }
    Ok(RunStats {
        steps,
        replication_factor: get_f64(input, "replication factor")?,
        partition_build_seconds: get_f64(input, "partition build")?,
        delta_apply_seconds: get_f64(input, "delta apply")?,
        delta_touched_partitions: get_u64(input, "delta touched")? as usize,
    })
}

fn put_server_stats(out: &mut Vec<u8>, s: &ServerStats) {
    put_u64(out, s.requests as u64);
    put_u64(out, s.batches as u64);
    put_u64(out, s.queries_received as u64);
    put_u64(out, s.union_queries as u64);
    put_f64(out, s.simulated_seconds);
    put_f64(out, s.serve_wall_seconds);
    put_f64(out, s.setup_wall_seconds);
    put_f64(out, s.partition_build_seconds);
    put_f64(out, s.replication_factor);
    put_u64(out, s.updates as u64);
    put_u64(out, s.edges_inserted as u64);
    put_u64(out, s.edges_removed as u64);
    put_f64(out, s.delta_apply_seconds);
    put_u64(out, s.delta_touched_partitions as u64);
    let buckets = s.latency.bucket_counts();
    put_u32(out, buckets.len() as u32);
    for &c in buckets {
        put_u64(out, c);
    }
    put_u64(out, s.workers as u64);
}

fn get_server_stats(input: &mut &[u8]) -> Result<ServerStats, WireError> {
    let mut s = ServerStats {
        requests: get_u64(input, "stats requests")? as usize,
        batches: get_u64(input, "stats batches")? as usize,
        queries_received: get_u64(input, "stats queries")? as usize,
        union_queries: get_u64(input, "stats union")? as usize,
        simulated_seconds: get_f64(input, "stats simulated")?,
        serve_wall_seconds: get_f64(input, "stats serve wall")?,
        setup_wall_seconds: get_f64(input, "stats setup wall")?,
        partition_build_seconds: get_f64(input, "stats partition build")?,
        replication_factor: get_f64(input, "stats replication")?,
        updates: get_u64(input, "stats updates")? as usize,
        edges_inserted: get_u64(input, "stats inserted")? as usize,
        edges_removed: get_u64(input, "stats removed")? as usize,
        delta_apply_seconds: get_f64(input, "stats delta apply")?,
        delta_touched_partitions: get_u64(input, "stats delta touched")? as usize,
        ..ServerStats::default()
    };
    let nbuckets = get_count(input, 8, "stats bucket count")?;
    let mut buckets = Vec::with_capacity(nbuckets);
    for _ in 0..nbuckets {
        buckets.push(get_u64(input, "stats bucket")?);
    }
    s.latency = LatencyHistogram::from_bucket_counts(&buckets);
    s.workers = get_u64(input, "stats workers")? as usize;
    Ok(s)
}

fn put_delta_stats(out: &mut Vec<u8>, s: &DeltaStats) {
    put_u64(out, s.inserted_edges as u64);
    put_u64(out, s.removed_edges as u64);
    put_u64(out, s.grown_vertices as u64);
    put_u64(out, s.touched_partitions as u64);
    put_f64(out, s.apply_wall_seconds);
}

fn get_delta_stats(input: &mut &[u8]) -> Result<DeltaStats, WireError> {
    Ok(DeltaStats {
        inserted_edges: get_u64(input, "delta inserted")? as usize,
        removed_edges: get_u64(input, "delta removed")? as usize,
        grown_vertices: get_u64(input, "delta grown")? as usize,
        touched_partitions: get_u64(input, "delta touched")? as usize,
        apply_wall_seconds: get_f64(input, "delta wall")?,
    })
}

// ---------------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------------

/// Everything a shard must know to build its runtime: which shard it is,
/// the predictor to construct, the simulated cluster, the full graph (as
/// a [`snaple_graph::io`] binary blob), and an optional per-request seed
/// override mirroring
/// [`ConcurrentOptions::seed`](crate::concurrent::ConcurrentOptions::seed).
#[derive(Clone, Debug)]
pub struct PrepareShard {
    /// This shard's index in `0..num_shards`.
    pub shard: u32,
    /// Total number of shards in the deployment.
    pub num_shards: u32,
    /// Per-request seed override (`None` = use the spec's seed).
    pub seed_override: Option<u64>,
    /// The predictor to build.
    pub spec: ShardSpec,
    /// The simulated cluster every shard deploys onto.
    pub cluster: ClusterSpec,
    /// The graph, serialized with [`snaple_graph::io::write_binary`].
    pub graph_blob: Vec<u8>,
}

/// A router → shard message.
#[derive(Clone, Debug)]
pub enum Request {
    /// Build the shard runtime (must be the first message).
    Prepare(Box<PrepareShard>),
    /// Answer the sub-query set this shard owns.
    Predict {
        /// Correlates the reply with the submission.
        request_id: u64,
        /// The vertex ids to serve (already filtered to this shard).
        queries: Vec<u32>,
    },
    /// Apply a graph delta via an epoch fork.
    Delta {
        /// Correlates the reply with the submission.
        request_id: u64,
        /// The delta's operations in application order:
        /// `(u, v, weight, is_insert)`.
        ops: Vec<(u32, u32, f32, bool)>,
    },
    /// Stop serving; the shard answers with [`Reply::Stats`] and exits.
    Shutdown,
}

impl Request {
    /// Serializes the request into a complete frame.
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] if the encoded payload (practically:
    /// the graph blob) exceeds [`MAX_FRAME_LEN`].
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut payload = Vec::new();
        let tag = match self {
            Request::Prepare(p) => {
                put_u32(&mut payload, p.shard);
                put_u32(&mut payload, p.num_shards);
                put_opt_u64(&mut payload, p.seed_override);
                put_spec(&mut payload, &p.spec);
                put_str(&mut payload, &p.cluster.name);
                put_u64(&mut payload, p.cluster.nodes as u64);
                put_u64(&mut payload, p.cluster.cores_per_node as u64);
                put_u64(&mut payload, p.cluster.memory_per_node);
                put_f64(&mut payload, p.cluster.bandwidth);
                put_f64(&mut payload, p.cluster.step_latency);
                put_bytes(&mut payload, &p.graph_blob);
                TAG_PREPARE
            }
            Request::Predict {
                request_id,
                queries,
            } => {
                put_u64(&mut payload, *request_id);
                put_u32(&mut payload, queries.len() as u32);
                for &q in queries {
                    put_u32(&mut payload, q);
                }
                TAG_PREDICT
            }
            Request::Delta { request_id, ops } => {
                put_u64(&mut payload, *request_id);
                // The shared delta codec: identical bytes to the
                // durability commitlog's frames.
                snaple_graph::codec::encode_ops(&mut payload, ops);
                TAG_DELTA
            }
            Request::Shutdown => TAG_SHUTDOWN,
        };
        encode_frame(tag, &payload)
    }

    /// Decodes a request from a received frame's tag and payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownTag`] for tags outside the request range
    /// (including reply tags); [`WireError::Malformed`] when the payload
    /// does not match the tag's layout exactly (trailing bytes included).
    pub fn decode(tag: u8, mut payload: &[u8]) -> Result<Request, WireError> {
        let input = &mut payload;
        let req = match tag {
            TAG_PREPARE => {
                let shard = get_u32(input, "prepare shard")?;
                let num_shards = get_u32(input, "prepare num_shards")?;
                let seed_override = get_opt_u64(input, "prepare seed")?;
                let spec = get_spec(input)?;
                let cluster = ClusterSpec {
                    name: get_str(input, "cluster name")?,
                    nodes: get_u64(input, "cluster nodes")? as usize,
                    cores_per_node: get_u64(input, "cluster cores")? as usize,
                    memory_per_node: get_u64(input, "cluster memory")?,
                    bandwidth: get_f64(input, "cluster bandwidth")?,
                    step_latency: get_f64(input, "cluster latency")?,
                };
                let graph_blob = get_bytes(input, "graph blob")?;
                Request::Prepare(Box::new(PrepareShard {
                    shard,
                    num_shards,
                    seed_override,
                    spec,
                    cluster,
                    graph_blob,
                }))
            }
            TAG_PREDICT => {
                let request_id = get_u64(input, "predict id")?;
                let n = get_count(input, 4, "predict query count")?;
                let mut queries = Vec::with_capacity(n);
                for _ in 0..n {
                    queries.push(get_u32(input, "predict query")?);
                }
                Request::Predict {
                    request_id,
                    queries,
                }
            }
            TAG_DELTA => {
                let request_id = get_u64(input, "delta id")?;
                let ops = snaple_graph::codec::decode_ops(input)
                    .map_err(|e| WireError::Malformed(e.what()))?;
                Request::Delta { request_id, ops }
            }
            TAG_SHUTDOWN => Request::Shutdown,
            other => return Err(WireError::UnknownTag(other)),
        };
        if !input.is_empty() {
            return Err(short("trailing request bytes"));
        }
        Ok(req)
    }
}

/// One served row: the queried vertex and its ranked `(candidate,
/// score)` predictions, scores bit-exact.
pub type WireRow = (u32, Vec<(u32, f32)>);

/// A shard → router message.
#[derive(Clone, Debug)]
pub enum Reply {
    /// The shard built its runtime and is serving.
    Ready {
        /// Vertices in the shard's prepared graph.
        num_vertices: u64,
    },
    /// The rows answering one [`Request::Predict`].
    Rows {
        /// Echoes the request id.
        request_id: u64,
        /// Vertices in the shard's current epoch (rows indexes below it).
        num_vertices: u64,
        /// Only the queried rows — the wire never carries empty rows.
        rows: Vec<WireRow>,
        /// The masked run's statistics, mergeable across shards with
        /// [`RunStats::merge_parallel`].
        stats: RunStats,
    },
    /// One [`Request::Delta`] was applied as a new epoch.
    DeltaOk {
        /// Echoes the request id.
        request_id: u64,
        /// Vertices after the delta (deltas can grow the graph).
        num_vertices: u64,
        /// The application's cost counters.
        stats: DeltaStats,
    },
    /// A request failed inside the shard (bad queries, engine failure);
    /// the shard keeps serving.
    Err {
        /// Echoes the failing request id (0 during prepare).
        request_id: u64,
        /// The error's `Display` rendering.
        message: String,
    },
    /// Final statistics, answering [`Request::Shutdown`].
    Stats {
        /// The shard's full serve-loop statistics.
        stats: Box<ServerStats>,
    },
}

impl Reply {
    /// Serializes the reply into a complete frame.
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLarge`] if the encoded rows exceed
    /// [`MAX_FRAME_LEN`].
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut payload = Vec::new();
        let tag = match self {
            Reply::Ready { num_vertices } => {
                put_u64(&mut payload, *num_vertices);
                TAG_READY
            }
            Reply::Rows {
                request_id,
                num_vertices,
                rows,
                stats,
            } => {
                put_u64(&mut payload, *request_id);
                put_u64(&mut payload, *num_vertices);
                put_u32(&mut payload, rows.len() as u32);
                for (vertex, preds) in rows {
                    put_u32(&mut payload, *vertex);
                    put_u32(&mut payload, preds.len() as u32);
                    for &(v, score) in preds {
                        put_u32(&mut payload, v);
                        put_f32(&mut payload, score);
                    }
                }
                put_run_stats(&mut payload, stats);
                TAG_ROWS_OK
            }
            Reply::DeltaOk {
                request_id,
                num_vertices,
                stats,
            } => {
                put_u64(&mut payload, *request_id);
                put_u64(&mut payload, *num_vertices);
                put_delta_stats(&mut payload, stats);
                TAG_DELTA_OK
            }
            Reply::Err {
                request_id,
                message,
            } => {
                put_u64(&mut payload, *request_id);
                put_str(&mut payload, message);
                TAG_ERR
            }
            Reply::Stats { stats } => {
                put_server_stats(&mut payload, stats);
                TAG_STATS_OK
            }
        };
        encode_frame(tag, &payload)
    }

    /// Decodes a reply from a received frame's tag and payload.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownTag`] for tags outside the reply range;
    /// [`WireError::Malformed`] on layout mismatches (trailing bytes
    /// included).
    pub fn decode(tag: u8, mut payload: &[u8]) -> Result<Reply, WireError> {
        let input = &mut payload;
        let reply = match tag {
            TAG_READY => Reply::Ready {
                num_vertices: get_u64(input, "ready vertices")?,
            },
            TAG_ROWS_OK => {
                let request_id = get_u64(input, "rows id")?;
                let num_vertices = get_u64(input, "rows vertices")?;
                let n = get_count(input, 8, "row count")?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let vertex = get_u32(input, "row vertex")?;
                    let m = get_count(input, 8, "row prediction count")?;
                    let mut preds = Vec::with_capacity(m);
                    for _ in 0..m {
                        let v = get_u32(input, "row candidate")?;
                        let score = get_f32(input, "row score")?;
                        preds.push((v, score));
                    }
                    rows.push((vertex, preds));
                }
                let stats = get_run_stats(input)?;
                Reply::Rows {
                    request_id,
                    num_vertices,
                    rows,
                    stats,
                }
            }
            TAG_DELTA_OK => Reply::DeltaOk {
                request_id: get_u64(input, "delta-ok id")?,
                num_vertices: get_u64(input, "delta-ok vertices")?,
                stats: get_delta_stats(input)?,
            },
            TAG_ERR => Reply::Err {
                request_id: get_u64(input, "err id")?,
                message: get_str(input, "err message")?,
            },
            TAG_STATS_OK => Reply::Stats {
                stats: Box::new(get_server_stats(input)?),
            },
            other => return Err(WireError::UnknownTag(other)),
        };
        if !input.is_empty() {
            return Err(short("trailing reply bytes"));
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) -> Request {
        let frame = req.encode().unwrap();
        let mut payload = Vec::new();
        let tag = read_frame(&mut frame.as_slice(), &mut payload).unwrap();
        Request::decode(tag, &payload).unwrap()
    }

    fn round_trip_reply(reply: &Reply) -> Reply {
        let frame = reply.encode().unwrap();
        let mut payload = Vec::new();
        let tag = read_frame(&mut frame.as_slice(), &mut payload).unwrap();
        Reply::decode(tag, &payload).unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical zlib check value.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(0, b""), 0);
        // Resumable: split computation equals whole-buffer computation.
        let split = crc32(crc32(0, b"1234"), b"56789");
        assert_eq!(split, 0xCBF4_3926);
    }

    #[test]
    fn frames_round_trip() {
        for (tag, payload) in [(1u8, &b""[..]), (7, b"x"), (42, b"hello, shard")] {
            let frame = encode_frame(tag, payload).unwrap();
            let mut out = Vec::new();
            let got = read_frame(&mut frame.as_slice(), &mut out).unwrap();
            assert_eq!(got, tag);
            assert_eq!(out, payload);
        }
    }

    #[test]
    fn clean_eof_is_closed_and_partial_frames_are_truncated() {
        let mut buf = Vec::new();
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut { empty }, &mut buf), Err(WireError::Closed));
        let frame = encode_frame(3, b"payload").unwrap();
        // Every strict prefix of a valid frame is either Truncated (cut
        // mid-frame) — never a panic, never a bogus success.
        for cut in 1..frame.len() {
            let err = read_frame(&mut &frame[..cut], &mut buf).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_frame(3, b"payload").unwrap();
        frame[0] = b'X';
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut frame.as_slice(), &mut buf),
            Err(WireError::BadMagic([b'X', b'L']))
        ));
    }

    #[test]
    fn corrupt_bytes_fail_the_checksum() {
        let frame = encode_frame(3, b"some payload bytes").unwrap();
        // Flip one bit in every checksummed position (tag, length,
        // payload): all must be caught.
        for pos in 2..frame.len() - 4 {
            let mut bad = frame.clone();
            bad[pos] ^= 0x01;
            let mut buf = Vec::new();
            let err = read_frame(&mut bad.as_slice(), &mut buf).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::BadChecksum { .. }
                        | WireError::FrameTooLarge { .. }
                        | WireError::Truncated
                ),
                "pos {pos}: {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        // A hand-built header advertising a 4 GiB payload: rejected on
        // the spot.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(2);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut buf = Vec::new();
        assert_eq!(
            read_frame(&mut frame.as_slice(), &mut buf),
            Err(WireError::FrameTooLarge {
                len: u32::MAX as u64
            })
        );
        assert_eq!(buf.capacity(), 0, "no allocation for a rejected frame");
    }

    #[test]
    fn in_cap_lying_length_prefix_stays_bounded() {
        // The header promises 512 MiB but the stream holds 10 bytes: the
        // chunked reader must fail with Truncated after at most one
        // chunk's worth of buffering.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(2);
        frame.extend_from_slice(&(512u32 << 20).to_le_bytes());
        frame.extend_from_slice(&[0u8; 10]);
        let mut buf = Vec::new();
        assert_eq!(
            read_frame(&mut frame.as_slice(), &mut buf),
            Err(WireError::Truncated)
        );
        assert!(
            buf.capacity() <= 4 * READ_CHUNK,
            "buffered {} bytes for a truncated stream",
            buf.capacity()
        );
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        // Decoders are total over the tag space: tags from the other
        // direction and unassigned tags both come back typed.
        assert!(matches!(
            Request::decode(99, &[]),
            Err(WireError::UnknownTag(99))
        ));
        assert!(matches!(
            Request::decode(TAG_ROWS_OK, &[]),
            Err(WireError::UnknownTag(TAG_ROWS_OK))
        ));
        assert!(matches!(
            Reply::decode(TAG_PREPARE, &[]),
            Err(WireError::UnknownTag(TAG_PREPARE))
        ));
    }

    #[test]
    fn predict_and_delta_requests_round_trip() {
        let req = Request::Predict {
            request_id: 77,
            queries: vec![0, 5, 1_000_000],
        };
        match round_trip_request(&req) {
            Request::Predict {
                request_id,
                queries,
            } => {
                assert_eq!(request_id, 77);
                assert_eq!(queries, vec![0, 5, 1_000_000]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        let req = Request::Delta {
            request_id: 78,
            ops: vec![(1, 2, 1.5, true), (3, 4, 1.0, false)],
        };
        match round_trip_request(&req) {
            Request::Delta { request_id, ops } => {
                assert_eq!(request_id, 78);
                assert_eq!(ops, vec![(1, 2, 1.5, true), (3, 4, 1.0, false)]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        assert!(matches!(
            round_trip_request(&Request::Shutdown),
            Request::Shutdown
        ));
    }

    #[test]
    fn delta_frame_golden_bytes() {
        // Pins the shard wire format byte-for-byte across the shared
        // delta-codec refactor: a `Request::Delta` frame must serialize
        // to exactly these bytes, forever. Any codec change that shifts
        // them is a protocol break.
        let req = Request::Delta {
            request_id: 0x0102_0304_0506_0708,
            ops: vec![(1, 2, 1.5, true), (3, 4, 0.0, false)],
        };
        let frame = req.encode().unwrap();
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            b'S', b'L',                                     // magic
            3,                                              // TAG_DELTA
            38, 0, 0, 0,                                    // payload len
            0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // request_id LE
            2, 0, 0, 0,                                     // op count
            1, 0, 0, 0,   2, 0, 0, 0,                       // u, v
            0x00, 0x00, 0xC0, 0x3F,                         // 1.5f32.to_bits()
            1,                                              // insert
            3, 0, 0, 0,   4, 0, 0, 0,                       // u, v
            0, 0, 0, 0,                                     // 0.0
            0,                                              // remove
            0x21, 0x48, 0x04, 0xB3,                         // crc32 LE
        ];
        assert_eq!(frame, expected);
    }

    #[test]
    fn prepare_round_trips_both_spec_kinds() {
        let single = ShardSpec::Single(
            SnapleConfig::new(NamedScore::Counter)
                .k(7)
                .klocal(None)
                .thr_gamma(Some(80))
                .alpha(0.25)
                .selection(SelectionPolicy::Random)
                .seed(0xDEAD)
                .partition(PartitionStrategy::GreedyVertexCut),
        );
        let mut plan_config = PlanConfig::new();
        plan_config.seed = 99;
        let plan = ShardSpec::Plan {
            specs: vec!["jaccard@k16".into(), "counter".into()],
            config: plan_config,
        };
        for spec in [single, plan] {
            let req = Request::Prepare(Box::new(PrepareShard {
                shard: 2,
                num_shards: 4,
                seed_override: Some(5),
                spec: spec.clone(),
                cluster: ClusterSpec::type_i(8),
                graph_blob: vec![1, 2, 3, 4, 5],
            }));
            match round_trip_request(&req) {
                Request::Prepare(p) => {
                    assert_eq!(p.shard, 2);
                    assert_eq!(p.num_shards, 4);
                    assert_eq!(p.seed_override, Some(5));
                    assert_eq!(p.cluster, ClusterSpec::type_i(8));
                    assert_eq!(p.graph_blob, vec![1, 2, 3, 4, 5]);
                    match (&spec, &p.spec) {
                        (ShardSpec::Single(a), ShardSpec::Single(b)) => {
                            assert_eq!(a.score, b.score);
                            assert_eq!(a.k, b.k);
                            assert_eq!(a.klocal, b.klocal);
                            assert_eq!(a.thr_gamma, b.thr_gamma);
                            assert_eq!(a.alpha.to_bits(), b.alpha.to_bits());
                            assert_eq!(a.selection, b.selection);
                            assert_eq!(a.seed, b.seed);
                            assert_eq!(a.partition, b.partition);
                            assert_eq!(a.path_length, b.path_length);
                        }
                        (
                            ShardSpec::Plan {
                                specs: a,
                                config: ca,
                            },
                            ShardSpec::Plan {
                                specs: b,
                                config: cb,
                            },
                        ) => {
                            assert_eq!(a, b);
                            assert_eq!(ca.seed, cb.seed);
                            assert_eq!(ca.k, cb.k);
                        }
                        _ => panic!("spec kind changed across the wire"),
                    }
                }
                other => panic!("wrong decode: {other:?}"),
            }
        }
    }

    #[test]
    fn rows_reply_round_trips_scores_bit_exactly() {
        // Scores chosen to stress f32 bit-exactness: subnormal, negative
        // zero, and values that don't survive a decimal round trip.
        let rows = vec![
            (3u32, vec![(7u32, 0.1f32), (9, f32::MIN_POSITIVE / 2.0)]),
            (5, vec![(1, -0.0f32)]),
            (8, vec![]),
        ];
        let stats = RunStats {
            steps: vec![StepStats {
                name: "score".into(),
                gather_calls: 10,
                sum_calls: 5,
                apply_calls: 3,
                work_ops: 100,
                broadcast_bytes: 64,
                partial_bytes: 32,
                per_node: vec![NodeStats {
                    compute_ops: 50,
                    net_bytes: 96,
                    memory_peak: 1024,
                }],
                simulated_seconds: 0.25,
            }],
            replication_factor: 1.5,
            ..RunStats::default()
        };
        let reply = Reply::Rows {
            request_id: 11,
            num_vertices: 100,
            rows: rows.clone(),
            stats: stats.clone(),
        };
        match round_trip_reply(&reply) {
            Reply::Rows {
                request_id,
                num_vertices,
                rows: got_rows,
                stats: got_stats,
            } => {
                assert_eq!(request_id, 11);
                assert_eq!(num_vertices, 100);
                assert_eq!(got_rows.len(), rows.len());
                for ((v_a, preds_a), (v_b, preds_b)) in rows.iter().zip(&got_rows) {
                    assert_eq!(v_a, v_b);
                    assert_eq!(preds_a.len(), preds_b.len());
                    for (&(c_a, s_a), &(c_b, s_b)) in preds_a.iter().zip(preds_b) {
                        assert_eq!(c_a, c_b);
                        assert_eq!(s_a.to_bits(), s_b.to_bits(), "score bits changed");
                    }
                }
                assert_eq!(got_stats.steps.len(), 1);
                assert_eq!(got_stats.steps[0].name, "score");
                assert_eq!(got_stats.steps[0].per_node[0].net_bytes, 96);
                assert_eq!(got_stats.replication_factor, 1.5);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn stats_and_err_replies_round_trip() {
        let mut server_stats = ServerStats {
            requests: 9,
            ..ServerStats::default()
        };
        server_stats.latency.record(1e-3);
        server_stats.latency.record(2e-6);
        let reply = Reply::Stats {
            stats: Box::new(server_stats.clone()),
        };
        match round_trip_reply(&reply) {
            Reply::Stats { stats } => assert_eq!(*stats, server_stats),
            other => panic!("wrong decode: {other:?}"),
        }
        let reply = Reply::Err {
            request_id: 4,
            message: "query 10 out of range".into(),
        };
        match round_trip_reply(&reply) {
            Reply::Err {
                request_id,
                message,
            } => {
                assert_eq!(request_id, 4);
                assert_eq!(message, "query 10 out of range");
            }
            other => panic!("wrong decode: {other:?}"),
        }
        match round_trip_reply(&Reply::Ready { num_vertices: 42 }) {
            Reply::Ready { num_vertices } => assert_eq!(num_vertices, 42),
            other => panic!("wrong decode: {other:?}"),
        }
        let delta = DeltaStats {
            inserted_edges: 3,
            removed_edges: 1,
            grown_vertices: 2,
            touched_partitions: 4,
            apply_wall_seconds: 0.125,
        };
        match round_trip_reply(&Reply::DeltaOk {
            request_id: 6,
            num_vertices: 50,
            stats: delta,
        }) {
            Reply::DeltaOk {
                request_id,
                num_vertices,
                stats,
            } => {
                assert_eq!(request_id, 6);
                assert_eq!(num_vertices, 50);
                assert_eq!(stats.inserted_edges, 3);
                assert_eq!(stats.apply_wall_seconds, 0.125);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let frame = Request::Shutdown.encode().unwrap();
        let mut payload = Vec::new();
        let tag = read_frame(&mut frame.as_slice(), &mut payload).unwrap();
        payload.push(0xFF);
        assert!(matches!(
            Request::decode(tag, &payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn lying_element_counts_are_rejected_before_allocating() {
        // A Predict payload claiming 2^32-1 queries with 4 bytes of data:
        // the count guard must reject it without reserving gigabytes.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // request id
        put_u32(&mut payload, u32::MAX); // query count
        put_u32(&mut payload, 7); // one actual query
        assert!(matches!(
            Request::decode(TAG_PREDICT, &payload),
            Err(WireError::Malformed(_))
        ));
    }
}
