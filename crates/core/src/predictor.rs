//! The public SNAPLE predictor.

use std::time::Instant;

use snaple_gas::{Deployment, Engine, RunStats};
use snaple_graph::{GraphStore, VertexId, VertexMask};

use crate::config::{PathLength, ScoreComponents, SnapleConfig};
use crate::error::SnapleError;
use crate::predictor_api::{
    ExecuteRequest, Predictor, PrepareRequest, PreparedPredictor, SetupStats,
};
use crate::state::SnapleVertex;
use crate::steps::{NeighborhoodStep, PromoteScoresStep, ScoreStep, SecondHop, SimilarityStep};

/// Per-step active-vertex masks of a targeted SNAPLE run.
///
/// Masks shrink as information flows toward the queries: the first step
/// must materialize neighborhoods for every vertex within lookahead of a
/// query, the last step only scores the queries themselves.
pub(crate) struct StepMasks {
    /// [`NeighborhoodStep`] — queries plus every vertex within the
    /// program's full hop lookahead.
    pub(crate) neighborhood: VertexMask,
    /// [`SimilarityStep`] — queries plus the vertices whose similarity
    /// tables later steps read.
    pub(crate) similarity: VertexMask,
    /// The 3-hop extension's extra score + promote pass (`None` for
    /// standard 2-hop runs) — queries plus their direct out-neighbors.
    pub(crate) promote: Option<VertexMask>,
    /// The final [`ScoreStep`] — exactly the queries.
    pub(crate) score: VertexMask,
}

impl StepMasks {
    /// Builds the mask chain for `queries` by expanding one out-hop per
    /// step of lookahead.
    pub(crate) fn build(
        graph: &dyn GraphStore,
        queries: &VertexMask,
        path_length: PathLength,
    ) -> StepMasks {
        let score = queries.clone();
        match path_length {
            PathLength::Two => {
                let similarity = score.expand_out(graph);
                let neighborhood = similarity.expand_out(graph);
                StepMasks {
                    neighborhood,
                    similarity,
                    promote: None,
                    score,
                }
            }
            PathLength::Three => {
                let promote = score.expand_out(graph);
                let similarity = promote.expand_out(graph);
                let neighborhood = similarity.expand_out(graph);
                StepMasks {
                    neighborhood,
                    similarity,
                    promote: Some(promote),
                    score,
                }
            }
        }
    }
}

/// SNAPLE link predictor: configuration plus resolved scoring components.
///
/// See the [crate docs](crate) for the model and a complete example.
#[derive(Clone, Debug)]
pub struct Snaple {
    config: SnapleConfig,
    components: ScoreComponents,
}

impl Snaple {
    /// Creates a predictor from a configuration, resolving the named
    /// [`NamedScore`](crate::NamedScore) into concrete components.
    pub fn new(config: SnapleConfig) -> Self {
        let components = config.score.resolve(config.alpha);
        Snaple { config, components }
    }

    /// Creates a predictor with custom scoring components (a user-supplied
    /// similarity, combinator or aggregator); `config.score` is ignored
    /// except for reporting.
    pub fn with_components(config: SnapleConfig, components: ScoreComponents) -> Self {
        Snaple { config, components }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &SnapleConfig {
        &self.config
    }

    /// The resolved scoring components.
    pub fn components(&self) -> &ScoreComponents {
        &self.components
    }

    /// Rejects configurations no run could execute (zero `k`/`klocal`).
    fn validate_config(&self) -> Result<(), SnapleError> {
        if self.config.k == 0 {
            return Err(SnapleError::InvalidConfig(
                "k must be at least 1".to_owned(),
            ));
        }
        if self.config.klocal == Some(0) {
            return Err(SnapleError::InvalidConfig(
                "klocal must be at least 1 (use None to disable sampling)".to_owned(),
            ));
        }
        Ok(())
    }

    /// Runs the paper's Algorithm 2 on a prepared [`Deployment`],
    /// answering one [`ExecuteRequest`].
    ///
    /// This is the *execute* half of the serving lifecycle — the engine
    /// reuses the deployment's partition instead of re-hashing every edge,
    /// so a stream of requests pays the O(edges) setup once.
    ///
    /// Since the [`ScorePlan`](crate::ScorePlan) redesign, `Snaple` *is*
    /// the 1-spec special case of a plan: this method compiles the
    /// configuration into a single-column plan and runs the fused sweep
    /// ([`ScorePlan::execute_on`](crate::ScorePlan::execute_on)). To
    /// evaluate several configurations, put them in one plan — N columns
    /// cost roughly one sweep, not N
    /// (see the [plan module docs](crate::plan)).
    ///
    /// With [`ExecuteRequest::queries`], the steps execute under shrinking
    /// active-vertex masks — neighborhoods for everything within the
    /// program's hop lookahead of a query, similarities for queries and
    /// their direct neighbors, scores for the queries alone — so small
    /// query sets do far less gather/scatter work. Queried rows are
    /// bit-identical to an all-vertices run; all other rows are empty.
    /// Per-vertex content arrives via [`ExecuteRequest::attributes`]
    /// (paper §3.1's content extension).
    ///
    /// # Errors
    ///
    /// * [`SnapleError::InvalidConfig`] if `k` or `klocal` is zero, if
    ///   attributes do not cover every vertex, or if a query id is out of
    ///   range.
    /// * [`SnapleError::Engine`] when the simulated cluster cannot execute
    ///   the program (memory exhaustion).
    pub fn execute_on(
        &self,
        deployment: &Deployment<'_>,
        req: &ExecuteRequest<'_>,
    ) -> Result<Prediction, SnapleError> {
        self.validate_config()?;
        let plan = crate::plan::ScorePlan::from_snaple(self)?;
        Ok(plan.execute_on(deployment, req)?.into_column(0))
    }

    /// The pre-[`ScorePlan`](crate::ScorePlan) reference implementation:
    /// drives the classic single-score [`steps`](crate::steps) directly
    /// instead of compiling to a fused plan.
    ///
    /// Kept public as the independent oracle the fused engine is
    /// differential-tested against (every plan column must be
    /// bit-identical to this path); applications should prefer
    /// [`Snaple::execute_on`].
    ///
    /// # Errors
    ///
    /// As [`Snaple::execute_on`].
    pub fn execute_unfused_on(
        &self,
        deployment: &Deployment<'_>,
        req: &ExecuteRequest<'_>,
    ) -> Result<Prediction, SnapleError> {
        self.validate_config()?;
        let graph = deployment.graph();
        req.validate_for(graph)?;
        let mut engine = Engine::on(deployment).with_seed(req.seed().unwrap_or(self.config.seed));
        let mut state = vec![SnapleVertex::default(); graph.num_vertices()];
        if let Some(attrs) = req.attributes() {
            for (vertex, tags) in state.iter_mut().zip(attrs) {
                let mut tags = tags.clone();
                tags.sort_unstable();
                tags.dedup();
                vertex.tags = tags;
            }
        }
        let masks = req
            .query_mask(graph)
            .map(|q| StepMasks::build(graph, &q, self.config.path_length));

        engine.run_step_masked(
            &NeighborhoodStep {
                thr_gamma: self.config.thr_gamma,
            },
            &mut state,
            masks.as_ref().map(|m| &m.neighborhood),
        )?;
        engine.run_step_masked(
            &SimilarityStep {
                components: &self.components,
                klocal: self.config.klocal,
                selection: self.config.selection,
            },
            &mut state,
            masks.as_ref().map(|m| &m.similarity),
        )?;
        if self.config.path_length == PathLength::Three {
            // Recursive longer-path extension (paper §3.1, footnote 2):
            // compute 2-hop scores, promote them into the similarity
            // tables, then combine once more — scoring 3-hop paths.
            let keep = self.config.klocal.unwrap_or(self.config.k.max(20));
            let promote_mask = masks.as_ref().and_then(|m| m.promote.as_ref());
            engine.run_step_masked(
                &ScoreStep {
                    components: &self.components,
                    k: keep,
                    second_hop: SecondHop::Sims,
                },
                &mut state,
                promote_mask,
            )?;
            engine.run_step_masked(&PromoteScoresStep { keep }, &mut state, promote_mask)?;
        }
        let second_hop = match self.config.path_length {
            PathLength::Two => SecondHop::Sims,
            PathLength::Three => SecondHop::Paths,
        };
        engine.run_step_masked(
            &ScoreStep {
                components: &self.components,
                k: self.config.k,
                second_hop,
            },
            &mut state,
            masks.as_ref().map(|m| &m.score),
        )?;

        let predictions = state.into_iter().map(|s| s.predictions).collect();
        Ok(Prediction {
            predictions,
            stats: engine.into_stats(),
        })
    }
}

/// A SNAPLE predictor with its deployment (partition layout, presence
/// masks, cost model) already built — returned by [`Snaple`]'s
/// [`Predictor::prepare`].
///
/// Owns its configuration (a cheap clone — scoring components are
/// `Arc`-shared), so epoch forks
/// ([`PreparedPredictor::fork_with_delta`]) detach into fully owned
/// snapshots.
pub struct PreparedSnaple<'a> {
    snaple: Snaple,
    deployment: Deployment<'a>,
    setup: SetupStats,
}

impl<'a> PreparedSnaple<'a> {
    /// The shared deployment this predictor executes on.
    pub fn deployment(&self) -> &Deployment<'a> {
        &self.deployment
    }
}

impl PreparedPredictor for PreparedSnaple<'_> {
    fn execute(&self, req: &ExecuteRequest<'_>) -> Result<Prediction, SnapleError> {
        self.snaple.execute_on(&self.deployment, req)
    }

    fn apply_delta(
        &mut self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<snaple_gas::DeltaStats, SnapleError> {
        Ok(self.deployment.apply_delta(delta)?)
    }

    fn fork_with_delta(
        &self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<(Box<dyn PreparedPredictor>, snaple_gas::DeltaStats), SnapleError> {
        let mut deployment = self.deployment.detach();
        let applied = deployment.apply_delta(delta)?;
        let fork = PreparedSnaple {
            snaple: self.snaple.clone(),
            deployment,
            setup: self.setup.clone(),
        };
        Ok((Box::new(fork), applied))
    }

    fn setup(&self) -> &SetupStats {
        &self.setup
    }
}

impl Predictor for Snaple {
    /// Builds the deployment (vertex-cut partition over the requested
    /// cluster, cost model) once; the returned [`PreparedSnaple`] answers
    /// any number of [`ExecuteRequest`]s against it.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] if `k` or `klocal` is zero or the
    /// cluster shape is unusable.
    fn prepare<'a>(
        &'a self,
        req: &PrepareRequest<'a>,
    ) -> Result<Box<dyn PreparedPredictor + 'a>, SnapleError> {
        self.validate_config()?;
        let started = Instant::now();
        let deployment = Deployment::new(
            req.graph(),
            req.cluster().clone(),
            self.config.partition,
            self.config.seed,
        )?;
        let setup = SetupStats {
            prepare_wall_seconds: started.elapsed().as_secs_f64(),
            partition_build_seconds: deployment.partition_build_seconds(),
            replication_factor: deployment.replication_factor(),
        };
        Ok(Box::new(PreparedSnaple {
            snaple: self.clone(),
            deployment,
            setup,
        }))
    }
}

/// The result of a SNAPLE run: per-vertex predicted edges plus execution
/// statistics.
#[derive(Clone, Debug)]
pub struct Prediction {
    predictions: Vec<Vec<(VertexId, f32)>>,
    /// Engine statistics (simulated time, network bytes, peak memory,
    /// replication factor).
    pub stats: RunStats,
}

impl Prediction {
    /// Assembles a result from raw parts.
    ///
    /// Exists so that alternative predictors sharing SNAPLE's evaluation
    /// pipeline (the BASELINE of paper §5.3, the Cassovary comparator of
    /// §5.9) can return the same result type.
    pub fn from_parts(predictions: Vec<Vec<(VertexId, f32)>>, stats: RunStats) -> Self {
        Prediction { predictions, stats }
    }

    /// Number of vertices predictions were computed for.
    pub fn num_vertices(&self) -> usize {
        self.predictions.len()
    }

    /// Predicted `(target, score)` pairs for `u`, best first.
    pub fn for_vertex(&self, u: VertexId) -> &[(VertexId, f32)] {
        &self.predictions[u.index()]
    }

    /// Iterates `(source, predictions)` pairs over all vertices.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[(VertexId, f32)])> + '_ {
        self.predictions
            .iter()
            .enumerate()
            .map(|(i, p)| (VertexId::new(i as u32), p.as_slice()))
    }

    /// Total number of predicted edges.
    pub fn total_predictions(&self) -> usize {
        self.predictions.iter().map(Vec::len).sum()
    }

    /// Simulated cluster seconds the run took (cost-model output).
    pub fn simulated_seconds(&self) -> f64 {
        self.stats.simulated_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NamedScore, SelectionPolicy};
    use crate::predictor_api::{PredictRequest, QuerySet};
    use snaple_gas::{ClusterSpec, EngineError};
    use snaple_graph::gen::datasets;
    use snaple_graph::CsrGraph;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// Diamond-with-tail from the paper's Figure 2 spirit:
    /// 0 → {1, 2}; 1 → {3, 4}; 2 → {3}. Candidate 3 is reachable over two
    /// paths, candidate 4 over one.
    fn path_count_graph() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 3)])
    }

    fn predict(config: SnapleConfig, graph: &CsrGraph) -> Prediction {
        let cluster = ClusterSpec::type_ii(2);
        Predictor::predict(&Snaple::new(config), &PredictRequest::new(graph, &cluster)).unwrap()
    }

    #[test]
    fn counter_scores_count_paths() {
        let g = path_count_graph();
        let p = predict(
            SnapleConfig::new(NamedScore::Counter)
                .k(5)
                .klocal(None)
                .thr_gamma(None),
            &g,
        );
        let preds = p.for_vertex(v(0));
        // 3 reached by two paths, 4 by one.
        assert_eq!(preds[0], (v(3), 2.0));
        assert_eq!(preds[1], (v(4), 1.0));
    }

    #[test]
    fn predictions_never_include_self_or_existing_neighbors() {
        let g = datasets::GOWALLA.emulate(0.005, 3);
        let p = predict(
            SnapleConfig::new(NamedScore::LinearSum)
                .k(5)
                .klocal(Some(10)),
            &g,
        );
        for (u, preds) in p.iter() {
            for &(z, score) in preds {
                assert_ne!(z, u, "self prediction at {u}");
                assert!(score >= 0.0);
                // With thrΓ high enough the full neighborhood is retained,
                // so no prediction may duplicate an existing edge.
                assert!(!g.has_edge(u, z), "{u} -> {z} already exists");
            }
        }
    }

    #[test]
    fn at_most_k_predictions_per_vertex() {
        let g = datasets::GOWALLA.emulate(0.005, 3);
        for k in [1, 3, 5] {
            let p = predict(SnapleConfig::new(NamedScore::LinearSum).k(k), &g);
            assert!(p.iter().all(|(_, preds)| preds.len() <= k));
            assert!(p.total_predictions() > 0);
        }
    }

    #[test]
    fn results_match_across_cluster_sizes_exactly_for_counter() {
        let g = datasets::GOWALLA.emulate(0.004, 5);
        let config = SnapleConfig::new(NamedScore::Counter).k(5).klocal(Some(10));
        let machine = ClusterSpec::single_machine(20, 128 << 30);
        let single = Predictor::predict(
            &Snaple::new(config.clone()),
            &PredictRequest::new(&g, &machine),
        )
        .unwrap();
        let sixteen = ClusterSpec::type_i(16);
        let cluster =
            Predictor::predict(&Snaple::new(config), &PredictRequest::new(&g, &sixteen)).unwrap();
        for (u, preds) in single.iter() {
            assert_eq!(preds, cluster.for_vertex(u), "vertex {u}");
        }
    }

    #[test]
    fn klocal_none_explores_more_candidates_than_small_klocal() {
        let g = datasets::POKEC.emulate(0.002, 9);
        let full = predict(
            SnapleConfig::new(NamedScore::LinearSum)
                .klocal(None)
                .thr_gamma(None),
            &g,
        );
        let sampled = predict(
            SnapleConfig::new(NamedScore::LinearSum)
                .klocal(Some(2))
                .thr_gamma(None),
            &g,
        );
        // Sampling restricts the candidate space, so the sampled run can
        // never produce more scored work than the full run.
        let full_work = full.stats.total_work_ops();
        let sampled_work = sampled.stats.total_work_ops();
        assert!(
            sampled_work < full_work,
            "sampled {sampled_work} !< full {full_work}"
        );
    }

    #[test]
    fn zero_k_is_rejected() {
        let g = path_count_graph();
        let one = ClusterSpec::type_i(1);
        let err = Predictor::predict(
            &Snaple::new(SnapleConfig::new(NamedScore::LinearSum).k(0)),
            &PredictRequest::new(&g, &one),
        )
        .unwrap_err();
        assert!(matches!(err, SnapleError::InvalidConfig(_)));
        let err = Predictor::predict(
            &Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(0))),
            &PredictRequest::new(&g, &one),
        )
        .unwrap_err();
        assert!(matches!(err, SnapleError::InvalidConfig(_)));
    }

    #[test]
    fn memory_exhaustion_propagates() {
        let g = datasets::GOWALLA.emulate(0.005, 3);
        let starved = ClusterSpec {
            memory_per_node: 1024,
            ..ClusterSpec::type_i(2)
        };
        let err = Predictor::predict(
            &Snaple::new(SnapleConfig::new(NamedScore::LinearSum)),
            &PredictRequest::new(&g, &starved),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SnapleError::Engine(EngineError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn prepared_execution_matches_one_shot_predicts() {
        let g = datasets::GOWALLA.emulate(0.004, 5);
        let cluster = ClusterSpec::type_ii(2);
        let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(10)));
        let prepared = snaple.prepare(&PrepareRequest::new(&g, &cluster)).unwrap();
        assert!(prepared.setup().partition_build_seconds > 0.0);
        assert!(prepared.setup().replication_factor >= 1.0);

        // Execute-many against one deployment vs fresh one-shot predicts.
        let full = prepared.execute(&ExecuteRequest::new()).unwrap();
        let one_shot = Predictor::predict(&snaple, &PredictRequest::new(&g, &cluster)).unwrap();
        for (u, preds) in full.iter() {
            assert_eq!(preds, one_shot.for_vertex(u));
        }
        // The prepared path amortizes the partition build; one-shot pays it.
        assert_eq!(full.stats.partition_build_seconds, 0.0);
        assert!(one_shot.stats.partition_build_seconds > 0.0);

        let attrs = vec![vec![1u32, 2]; g.num_vertices()];
        let with_attrs = prepared
            .execute(&ExecuteRequest::new().with_attributes(&attrs))
            .unwrap();
        let one_shot_attrs = Predictor::predict(
            &snaple,
            &PredictRequest::new(&g, &cluster).with_attributes(&attrs),
        )
        .unwrap();
        for (u, preds) in with_attrs.iter() {
            assert_eq!(preds, one_shot_attrs.for_vertex(u));
        }
        let short = vec![vec![1u32]; 2];
        assert!(matches!(
            prepared.execute(&ExecuteRequest::new().with_attributes(&short)),
            Err(SnapleError::InvalidConfig(_))
        ));
    }

    #[test]
    fn targeted_rows_match_the_full_run() {
        let g = datasets::GOWALLA.emulate(0.005, 3);
        let cluster = ClusterSpec::type_ii(4);
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .k(5)
                .klocal(Some(10)),
        );
        let full = Predictor::predict(&snaple, &PredictRequest::new(&g, &cluster)).unwrap();
        let queries = QuerySet::sample(g.num_vertices(), g.num_vertices() / 20, 11);
        let targeted = Predictor::predict(
            &snaple,
            &PredictRequest::new(&g, &cluster).with_queries(&queries),
        )
        .unwrap();
        assert_eq!(targeted.num_vertices(), full.num_vertices());
        for (u, preds) in targeted.iter() {
            if queries.contains(u) {
                assert_eq!(preds, full.for_vertex(u), "queried row {u} diverged");
            } else {
                assert!(preds.is_empty(), "non-queried row {u} must stay empty");
            }
        }
        assert!(
            targeted.stats.total_work_ops() < full.stats.total_work_ops(),
            "targeted {} !< full {}",
            targeted.stats.total_work_ops(),
            full.stats.total_work_ops()
        );
    }

    #[test]
    fn targeted_three_hop_rows_match_the_full_run() {
        use crate::config::PathLength;
        let g = datasets::POKEC.emulate(0.002, 9);
        let cluster = ClusterSpec::type_ii(2);
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::Counter)
                .klocal(Some(10))
                .path_length(PathLength::Three),
        );
        let full = Predictor::predict(&snaple, &PredictRequest::new(&g, &cluster)).unwrap();
        let queries = QuerySet::sample(g.num_vertices(), 25, 3);
        let targeted = Predictor::predict(
            &snaple,
            &PredictRequest::new(&g, &cluster).with_queries(&queries),
        )
        .unwrap();
        for q in queries.iter() {
            assert_eq!(targeted.for_vertex(q), full.for_vertex(q), "row {q}");
        }
        assert_eq!(targeted.stats.steps.len(), 5);
    }

    #[test]
    fn full_query_set_reproduces_the_all_vertices_run_bit_for_bit() {
        let g = datasets::GOWALLA.emulate(0.004, 7);
        let cluster = ClusterSpec::type_ii(4);
        let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(10)));
        let full = Predictor::predict(&snaple, &PredictRequest::new(&g, &cluster)).unwrap();
        let everyone = QuerySet::from_indices(0..g.num_vertices() as u32);
        let via_queries = Predictor::predict(
            &snaple,
            &PredictRequest::new(&g, &cluster).with_queries(&everyone),
        )
        .unwrap();
        for (u, preds) in full.iter() {
            assert_eq!(preds, via_queries.for_vertex(u), "vertex {u}");
        }
        assert_eq!(
            full.stats.total_work_ops(),
            via_queries.stats.total_work_ops()
        );
        assert_eq!(
            full.stats.total_network_bytes(),
            via_queries.stats.total_network_bytes()
        );
        assert_eq!(full.stats.peak_memory(), via_queries.stats.peak_memory());
    }

    #[test]
    fn out_of_range_queries_are_rejected() {
        let g = path_count_graph();
        let cluster = ClusterSpec::type_i(1);
        let bad = QuerySet::from_indices([0, 9]);
        let err = Predictor::predict(
            &Snaple::new(SnapleConfig::new(NamedScore::LinearSum)),
            &PredictRequest::new(&g, &cluster).with_queries(&bad),
        )
        .unwrap_err();
        assert!(matches!(err, SnapleError::InvalidConfig(_)));
    }

    #[test]
    fn selection_policies_produce_different_samples() {
        let g = datasets::LIVEJOURNAL.emulate(0.0005, 11);
        let base = SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(3));
        let max = predict(base.clone().selection(SelectionPolicy::Max), &g);
        let min = predict(base.clone().selection(SelectionPolicy::Min), &g);
        let differing = max
            .iter()
            .zip(min.iter())
            .filter(|((_, a), (_, b))| a != b)
            .count();
        assert!(differing > 0, "Γmax and Γmin should sample differently");
    }

    #[test]
    fn stats_expose_three_steps() {
        let g = path_count_graph();
        let p = predict(SnapleConfig::new(NamedScore::LinearSum), &g);
        assert_eq!(p.stats.steps.len(), 3);
        assert!(p.simulated_seconds() > 0.0);
        assert_eq!(p.num_vertices(), 5);
    }

    #[test]
    fn three_hop_paths_reach_further_candidates() {
        use crate::config::PathLength;
        // Chain with side links: 0 -> 1 -> 2 -> 3; 3 is 3 hops from 0.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 0), (2, 1)]);
        let two = predict(
            SnapleConfig::new(NamedScore::Counter)
                .klocal(None)
                .thr_gamma(None),
            &g,
        );
        let three = predict(
            SnapleConfig::new(NamedScore::Counter)
                .klocal(None)
                .thr_gamma(None)
                .path_length(PathLength::Three),
            &g,
        );
        let v3 = v(3);
        assert!(
            !two.for_vertex(v(0)).iter().any(|(z, _)| *z == v3),
            "2-hop scoring must not reach vertex 3"
        );
        assert!(
            three.for_vertex(v(0)).iter().any(|(z, _)| *z == v3),
            "3-hop scoring must reach vertex 3: {:?}",
            three.for_vertex(v(0))
        );
        // The extension adds two GAS steps.
        assert_eq!(three.stats.steps.len(), 5);
    }
}
