//! Poison-recovering lock helpers for the serving hot paths.
//!
//! The concurrent server and the shard router are panic-free zones
//! (see `snaple-lint`): a poisoned `Mutex`/`RwLock` must not cascade
//! into a second panic that hangs a client or kills a shard. Every
//! guarded section in those modules writes plain-old-data (counters,
//! `Option` swaps, queue push/pop), so the state behind a poisoned
//! lock is still coherent — recovering the guard via
//! [`PoisonError::into_inner`] is safe and is the idiom the close/
//! in-flight guards in `concurrent.rs` already established. These
//! helpers centralize it so call sites stay one line.

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard on poison.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering the guard on poison.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Consumes `m`, recovering the value on poison.
pub(crate) fn into_inner<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait`, recovering the guard on poison.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_while`, recovering the guard on poison.
pub(crate) fn wait_while<'a, T, F>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    condition: F,
) -> MutexGuard<'a, T>
where
    F: FnMut(&mut T) -> bool,
{
    cv.wait_while(guard, condition)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().expect("first lock");
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock(&m), 7);
    }

    #[test]
    fn rwlock_helpers_recover_from_poison() {
        let l = Arc::new(RwLock::new(3u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().expect("first write");
            panic!("poison it");
        })
        .join();
        assert_eq!(*read(&l), 3);
        *write(&l) = 4;
        assert_eq!(*read(&l), 4);
    }

    #[test]
    fn into_inner_recovers_from_poison() {
        let m = Mutex::new(5u32);
        assert_eq!(into_inner(m), 5);
    }
}
