//! SNAPLE's link prediction as a GAS program (paper Algorithm 2).
//!
//! The three steps share the [`SnapleVertex`] state and are usually driven
//! by [`Snaple::execute_on`](crate::Snaple::execute_on); they are public so that
//! applications can embed individual phases (e.g. reuse step 1+2 as a
//! standalone neighbor-similarity pipeline).

use snaple_gas::{GasStep, GatherCtx, WorkTally};
use snaple_graph::hash::{edge_unit, hash2};
use snaple_graph::VertexId;

use crate::config::{ScoreComponents, SelectionPolicy};
use crate::similarity::NeighborhoodView;
use crate::state::SnapleVertex;
use crate::topk::{bottom_k_by_score, top_k_by_score};

/// **Step 1** (Algorithm 2, lines 1–6): collect a sample of each vertex's
/// neighbor ids into `Du.Γ̂`.
///
/// When the gathering vertex's degree exceeds `thr_gamma`, each neighbor is
/// kept with probability `thrΓ / |Γ(u)|` (line 3) — evaluated with a
/// deterministic per-edge hash so results do not depend on the partitioning.
#[derive(Clone, Debug)]
pub struct NeighborhoodStep {
    /// Truncation threshold `thrΓ`; `None` disables truncation.
    pub thr_gamma: Option<usize>,
}

impl GasStep for NeighborhoodStep {
    type Vertex = SnapleVertex;
    type Gather = Vec<VertexId>;

    fn name(&self) -> &str {
        "snaple-1-neighborhood"
    }

    fn gather(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        _u_data: &SnapleVertex,
        v: VertexId,
        _v_data: &SnapleVertex,
        _work: &mut WorkTally,
    ) -> Option<Vec<VertexId>> {
        if let Some(thr) = self.thr_gamma {
            let degree = ctx.out_degree(u);
            if degree > thr {
                let keep_probability = thr as f64 / degree as f64;
                if edge_unit(ctx.seed(), u.as_u32(), v.as_u32()) > keep_probability {
                    return None;
                }
            }
        }
        Some(vec![v])
    }

    fn sum(&self, mut a: Vec<VertexId>, b: Vec<VertexId>, work: &mut WorkTally) -> Vec<VertexId> {
        work.add(b.len() as u64);
        a.extend(b);
        a
    }

    fn apply(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        data: &mut SnapleVertex,
        acc: Option<Vec<VertexId>>,
        work: &mut WorkTally,
    ) {
        let mut gamma = acc.unwrap_or_default();
        gamma.sort_unstable();
        gamma.dedup();
        work.add(gamma.len() as u64);
        data.gamma = gamma;
        data.out_degree = ctx.out_degree(u) as u32;
    }
}

/// **Step 2** (Algorithm 2, lines 7–11): compute raw similarities along
/// edges and keep the `klocal` sampled neighbors in `Du.sims`.
///
/// The sampling policy implements the paper's `Γmax`/`Γmin`/`Γrnd`
/// comparison (§5.6); `Γmax` is eq. 11.
#[derive(Clone, Debug)]
pub struct SimilarityStep<'c> {
    /// Scoring components (only the similarity is used in this step).
    pub components: &'c ScoreComponents,
    /// Sampling parameter `klocal`; `None` keeps every neighbor.
    pub klocal: Option<usize>,
    /// Which neighbors survive sampling.
    pub selection: SelectionPolicy,
}

impl GasStep for SimilarityStep<'_> {
    type Vertex = SnapleVertex;
    /// `(neighbor, scoring similarity, selection similarity)` triples. The
    /// selection similarity is eq. 11's `f(Γ̂(u), Γ̂(z))` (Jaccard in every
    /// named configuration) and only ranks neighbors for sampling; the
    /// scoring similarity is what the combinator consumes in step 3.
    type Gather = Vec<(VertexId, f32, f32)>;

    fn name(&self) -> &str {
        "snaple-2-similarity"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        u_data: &SnapleVertex,
        v: VertexId,
        v_data: &SnapleVertex,
        work: &mut WorkTally,
    ) -> Option<Vec<(VertexId, f32, f32)>> {
        // One work unit per merged neighbor id: the cost of the linear
        // set-intersection behind every neighborhood similarity.
        work.add((u_data.gamma.len() + v_data.gamma.len()) as u64);
        let u_view =
            NeighborhoodView::with_tags(&u_data.gamma, u_data.out_degree as usize, &u_data.tags);
        let v_view =
            NeighborhoodView::with_tags(&v_data.gamma, v_data.out_degree as usize, &v_data.tags);
        let s = self.components.similarity.score(u_view, v_view);
        let sel = if self.components.shares_selection_similarity() {
            s
        } else {
            work.add((u_data.gamma.len() + v_data.gamma.len()) as u64);
            self.components.selection_similarity.score(u_view, v_view)
        };
        Some(vec![(v, s, sel)])
    }

    fn sum(
        &self,
        mut a: Vec<(VertexId, f32, f32)>,
        b: Vec<(VertexId, f32, f32)>,
        work: &mut WorkTally,
    ) -> Vec<(VertexId, f32, f32)> {
        work.add(b.len() as u64);
        a.extend(b);
        a
    }

    fn apply(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        data: &mut SnapleVertex,
        acc: Option<Vec<(VertexId, f32, f32)>>,
        work: &mut WorkTally,
    ) {
        let candidates = acc.unwrap_or_default();
        work.add(candidates.len() as u64);
        // Rank by the selection similarity, carrying the scoring similarity
        // through as payload via an index indirection.
        let ranked: Vec<(VertexId, f32)> = candidates.iter().map(|&(v, _, sel)| (v, sel)).collect();
        let kept_ids: Vec<VertexId> = match self.klocal {
            None => ranked.into_iter().map(|(v, _)| v).collect(),
            Some(klocal) => match self.selection {
                SelectionPolicy::Max => top_k_by_score(ranked, klocal)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect(),
                SelectionPolicy::Min => bottom_k_by_score(ranked, klocal)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect(),
                SelectionPolicy::Random => {
                    // Deterministic uniform subset: order by per-(u, v) hash.
                    let mut hashed: Vec<(u64, VertexId)> = ranked
                        .into_iter()
                        .map(|(v, _)| (hash2(ctx.seed(), u.as_u32() as u64, v.as_u32() as u64), v))
                        .collect();
                    hashed.sort_unstable();
                    hashed.truncate(klocal);
                    hashed.into_iter().map(|(_, v)| v).collect()
                }
            },
        };
        let mut kept_ids = kept_ids;
        kept_ids.sort_unstable();
        let mut kept: Vec<(VertexId, f32)> = candidates
            .into_iter()
            .filter(|(v, _, _)| kept_ids.binary_search(v).is_ok())
            .map(|(v, s, _)| (v, s))
            .collect();
        kept.sort_unstable_by_key(|&(v, _)| v);
        kept.dedup_by_key(|&mut (v, _)| v);
        data.sims = kept;
    }
}

/// Where [`ScoreStep`] reads the second hop's table from.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SecondHop {
    /// The neighbor's sampled similarity table `Dv.sims` (standard 2-hop
    /// SNAPLE).
    #[default]
    Sims,
    /// The neighbor's promoted multi-hop path table `Dv.paths` (the
    /// longer-path extension of paper footnote 2).
    Paths,
}

/// **Step 3** (Algorithm 2, lines 12–20): combine raw similarities into
/// path similarities along the sampled 2-hop paths, aggregate per
/// candidate, and keep the top-`k` scores as predictions.
#[derive(Clone, Debug)]
pub struct ScoreStep<'c> {
    /// Scoring components (combinator + aggregator are used here).
    pub components: &'c ScoreComponents,
    /// Number of predictions kept per vertex.
    pub k: usize,
    /// Second-hop source table.
    pub second_hop: SecondHop,
}

impl GasStep for ScoreStep<'_> {
    type Vertex = SnapleVertex;
    /// `(candidate z, ⊕pre-accumulated lifted path similarity, path count)`
    /// triples, sorted by candidate id.
    type Gather = Vec<(VertexId, f32, u32)>;

    fn name(&self) -> &str {
        "snaple-3-score"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        u: VertexId,
        u_data: &SnapleVertex,
        v: VertexId,
        v_data: &SnapleVertex,
        work: &mut WorkTally,
    ) -> Option<Vec<(VertexId, f32, u32)>> {
        // Line 13: only edges that survived sampling open paths.
        let sim_uv = u_data.sim_of(v)?;
        let second: &[(VertexId, f32)] = match self.second_hop {
            SecondHop::Sims => &v_data.sims,
            SecondHop::Paths => &v_data.paths,
        };
        work.add(second.len() as u64);
        let mut out: Vec<(VertexId, f32, u32)> = Vec::with_capacity(second.len());
        for &(z, sim_vz) in second {
            // Line 15: z ∈ Γmax(v) \ Γ̂(u). Also drop z = u: predicting a
            // vertex as its own missing neighbor is never useful (Alg. 1
            // scores candidates outside Γ(u) ∪ {u}).
            if z == u || u_data.in_gamma(z) {
                continue;
            }
            let path = self.components.combinator.combine(sim_uv, sim_vz);
            out.push((z, self.components.aggregator.lift(path), 1));
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    fn sum(
        &self,
        a: Vec<(VertexId, f32, u32)>,
        b: Vec<(VertexId, f32, u32)>,
        work: &mut WorkTally,
    ) -> Vec<(VertexId, f32, u32)> {
        work.add((a.len() + b.len()) as u64);
        merge_triples(self.components, a, b)
    }

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        data: &mut SnapleVertex,
        acc: Option<Vec<(VertexId, f32, u32)>>,
        work: &mut WorkTally,
    ) {
        let merged = acc.unwrap_or_default();
        work.add(merged.len() as u64);
        let scored: Vec<(VertexId, f32)> = merged
            .into_iter()
            .map(|(z, sigma, n)| (z, self.components.aggregator.post(sigma, n)))
            .collect();
        data.predictions = top_k_by_score(scored, self.k);
    }
}

/// **Promotion step** for the recursive longer-path extension (paper §3.1,
/// footnote 2): moves each vertex's aggregated 2-hop scores into its
/// `Du.paths` table, so that running [`ScoreStep`] again with
/// [`SecondHop::Paths`] combines raw first-hop similarities with 2-hop
/// path scores — i.e. scores 3-hop paths. Apply-only: no gather traffic.
#[derive(Clone, Debug)]
pub struct PromoteScoresStep {
    /// How many of the 2-hop candidates each vertex carries forward
    /// (usually `klocal`, keeping the work bound at `O(klocal²)`).
    pub keep: usize,
}

impl GasStep for PromoteScoresStep {
    type Vertex = SnapleVertex;
    type Gather = ();

    fn name(&self) -> &str {
        "snaple-3b-promote"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        _u_data: &SnapleVertex,
        _v: VertexId,
        _v_data: &SnapleVertex,
        _work: &mut WorkTally,
    ) -> Option<()> {
        None
    }

    fn sum(&self, _a: (), _b: (), _work: &mut WorkTally) {}

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        data: &mut SnapleVertex,
        _acc: Option<()>,
        work: &mut WorkTally,
    ) {
        let mut promoted = top_k_by_score(std::mem::take(&mut data.predictions), self.keep);
        work.add(promoted.len() as u64);
        promoted.sort_unstable_by_key(|&(v, _)| v);
        data.paths = promoted;
    }
}

/// The paper's `merge` (line 16): a sorted-merge of two candidate lists
/// folding same-candidate entries with `⊕pre` and adding path counts.
fn merge_triples(
    components: &ScoreComponents,
    a: Vec<(VertexId, f32, u32)>,
    b: Vec<(VertexId, f32, u32)>,
) -> Vec<(VertexId, f32, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let (z, sa, na) = a[i];
                let (_, sb, nb) = b[j];
                out.push((z, components.aggregator.pre(sa, sb), na + nb));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NamedScore;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn merge_triples_folds_duplicates_and_stays_sorted() {
        let c = NamedScore::Counter.resolve(0.9);
        let a = vec![(v(1), 1.0, 1), (v(3), 1.0, 2)];
        let b = vec![(v(2), 1.0, 1), (v(3), 1.0, 1)];
        let m = merge_triples(&c, a, b);
        assert_eq!(m, vec![(v(1), 1.0, 1), (v(2), 1.0, 1), (v(3), 2.0, 3)]);
    }

    #[test]
    fn merge_triples_handles_empty_sides() {
        let c = NamedScore::LinearSum.resolve(0.9);
        let a = vec![(v(1), 0.5, 1)];
        assert_eq!(merge_triples(&c, a.clone(), vec![]), a);
        assert_eq!(merge_triples(&c, vec![], a.clone()), a);
    }

    #[test]
    fn merge_triples_is_commutative() {
        let c = NamedScore::LinearSum.resolve(0.9);
        let a = vec![(v(1), 0.25, 1), (v(4), 0.5, 2)];
        let b = vec![(v(1), 0.125, 3), (v(9), 0.75, 1)];
        assert_eq!(
            merge_triples(&c, a.clone(), b.clone()),
            merge_triples(&c, b, a)
        );
    }
}
