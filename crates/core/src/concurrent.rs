//! The concurrent serving runtime: a shared-nothing worker pool over one
//! `Arc`-shared prepared snapshot, with bounded-queue backpressure and
//! epoch-swapped graph updates.
//!
//! The sequential [`Server`](crate::serve::Server) executes every batch
//! on the caller's thread and stalls the whole stream while a
//! [`GraphDelta`] applies in place. This module is the production shape
//! of the same serve loop, following the read-mostly architecture of
//! deployed graph-serving systems: a **read path** that shares one
//! immutable snapshot across N workers, and a **write path** that builds
//! the post-delta snapshot off to the side and atomically publishes it.
//!
//! # Architecture
//!
//! * **Shared-nothing workers** — [`ConcurrentServer::run`] spawns
//!   [`ConcurrentOptions::workers`] OS threads. Each worker pops jobs
//!   from the submission queue, clones the `Arc` of the *current*
//!   snapshot, and executes against it via
//!   [`PreparedPredictor::execute`]'s `&self` contract (all per-run state
//!   is per-call, so workers share nothing but the immutable snapshot).
//!   A worker grabs up to [`ConcurrentOptions::batch`] queued jobs at
//!   once and coalesces them into one union-masked run — the same exact
//!   coalescing as [`Server::serve_batch`](crate::serve::Server::serve_batch),
//!   so responses stay bit-identical to serving each request alone.
//! * **Bounded queue, backpressure** — submissions beyond
//!   [`ConcurrentOptions::queue_capacity`] either block
//!   ([`ServeHandle::submit`], [`ServeHandle::serve`]) or fail fast with
//!   [`SnapleError::QueueFull`] ([`ServeHandle::try_submit`]); memory
//!   stays bounded no matter how fast callers produce requests.
//! * **Epoch-swapped updates** — [`ServeHandle::apply_update`] forks the
//!   current snapshot with the delta applied
//!   ([`PreparedPredictor::fork_with_delta`]), then swaps the `Arc`.
//!   In-flight batches finish on the epoch they started with; reads
//!   never block on writes (the swap itself is one pointer store under a
//!   briefly-held lock). Every batch therefore observes exactly one
//!   epoch — never a torn half-applied update — and post-swap responses
//!   are bit-identical to a cold rebuild on the mutated graph.
//!
//! The runtime is scoped: [`ConcurrentServer::run`] owns the pool for the
//! duration of a closure, hands it a cloneable [`ServeHandle`], drains
//! every accepted request when the closure returns, and reports the
//! stream's [`ServerStats`] — including p50/p95/p99 submission-to-response
//! latency from the fixed-bucket [`LatencyHistogram`].
//!
//! # When to still use the sequential `Server`
//!
//! [`Server`](crate::serve::Server) remains the right tool when replaying
//! a recorded stream in program order, when deterministic batch
//! boundaries matter (benchmarks), or when updates *should* serialize
//! against predictions. Its in-place [`apply_update`] is also cheaper
//! than an epoch fork: the fork clones the deployment (memcpy-bound)
//! before applying the delta incrementally, which is the price of never
//! stalling readers.
//!
//! [`apply_update`]: crate::serve::Server::apply_update
//!
//! # Example
//!
//! ```
//! use snaple_core::concurrent::{ConcurrentOptions, ConcurrentServer};
//! use snaple_core::{QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.005, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let outcome = ConcurrentServer::run(
//!     &snaple,
//!     &graph,
//!     &cluster,
//!     ConcurrentOptions::default().workers(2),
//!     |handle| {
//!         // Submit a wave without waiting, then collect.
//!         let pending: Vec<_> = (0..4)
//!             .map(|i| QuerySet::sample(graph.num_vertices(), 25, i))
//!             .map(|q| handle.submit(&q))
//!             .collect::<Result<_, _>>()?;
//!         for p in pending {
//!             let prediction = p.wait()?;
//!             assert_eq!(prediction.num_vertices(), graph.num_vertices());
//!         }
//!         Ok::<(), snaple_core::SnapleError>(())
//!     },
//! )?;
//! outcome.value?;
//! assert_eq!(outcome.stats.requests, 4);
//! println!("{}", outcome.stats.summary());
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::Instant;

use snaple_gas::{ClusterSpec, DeltaStats};
use snaple_graph::{GraphDelta, GraphStore};
use snaple_store::Durability;

use crate::error::SnapleError;
use crate::predictor::Prediction;
use crate::predictor_api::{
    ExecuteRequest, Predictor, PrepareRequest, PreparedPredictor, QuerySet,
};
use crate::serve::{demultiplex, LatencyHistogram, ServerStats};

/// Configuration of a [`ConcurrentServer`] run.
///
/// The lifetime parameter carries optional per-vertex attributes shared
/// by every request of the stream.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrentOptions<'a> {
    workers: usize,
    queue_capacity: usize,
    batch: usize,
    seed: Option<u64>,
    attributes: Option<&'a [Vec<u32>]>,
}

impl Default for ConcurrentOptions<'_> {
    fn default() -> Self {
        ConcurrentOptions {
            workers: snaple_gas::host_parallelism(),
            queue_capacity: 1024,
            batch: 1,
            seed: None,
            attributes: None,
        }
    }
}

impl<'a> ConcurrentOptions<'a> {
    /// Creates the default options: one worker per available core, a
    /// 1024-request queue, no worker-side coalescing.
    pub fn new() -> Self {
        ConcurrentOptions::default()
    }

    /// Sets the number of worker threads (at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the submission queue's capacity (at least 1): the bound at
    /// which [`ServeHandle::submit`] blocks and
    /// [`ServeHandle::try_submit`] returns [`SnapleError::QueueFull`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets how many queued jobs one worker may coalesce into a single
    /// union-masked run (at least 1). Responses stay bit-identical to
    /// serving each request alone; larger batches trade per-request
    /// latency for throughput by sharing the fixed per-superstep costs.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Overrides the seed of every request's randomized parts (matching
    /// [`Server::with_seed`](crate::serve::Server::with_seed)).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attaches per-vertex content attributes applied to every request
    /// (matching
    /// [`Server::with_attributes`](crate::serve::Server::with_attributes)).
    pub fn with_attributes(mut self, attributes: &'a [Vec<u32>]) -> Self {
        self.attributes = Some(attributes);
        self
    }
}

/// One published snapshot: a prepared predictor plus its epoch number.
struct Snapshot<'g> {
    prepared: Box<dyn PreparedPredictor + 'g>,
    epoch: u64,
}

/// One accepted prediction request, waiting in the queue.
struct Job {
    queries: QuerySet,
    submitted: Instant,
    reply: mpsc::Sender<Result<Prediction, SnapleError>>,
}

/// Queue state behind the mutex: pending jobs plus the bookkeeping
/// `drain` needs to know when the pool is idle.
struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
    open: bool,
}

/// Counters the workers accumulate; folded into [`ServerStats`] when the
/// run finishes.
#[derive(Default)]
struct Gauges {
    requests: usize,
    batches: usize,
    queries_received: usize,
    union_queries: usize,
    simulated_seconds: f64,
    latency: LatencyHistogram,
    updates: usize,
    edges_inserted: usize,
    edges_removed: usize,
    delta_apply_seconds: f64,
    delta_touched_partitions: usize,
}

/// Everything the workers, submitters and updater share.
struct Shared<'g> {
    queue: Mutex<QueueState>,
    /// Workers wait here for jobs.
    jobs_cv: Condvar,
    /// Blocked submitters wait here for queue space.
    space_cv: Condvar,
    /// `drain` waits here for the pool to go idle.
    idle_cv: Condvar,
    /// The current epoch. Readers hold the lock only long enough to clone
    /// the `Arc`; the writer only long enough to store a new one.
    snapshot: RwLock<Arc<Snapshot<'g>>>,
    /// Serializes updaters so concurrent `apply_update` calls compose
    /// (each fork starts from the previously published epoch).
    update_lock: Mutex<()>,
    /// The durability store, when the run persists into a data dir. Only
    /// ever locked while `update_lock` is held, so the commitlog append
    /// is the serialization point before each epoch swap.
    durability: Option<Mutex<Durability>>,
    gauges: Mutex<Gauges>,
    capacity: usize,
    batch: usize,
    seed: Option<u64>,
    attributes: Option<&'g [Vec<u32>]>,
}

/// The result of a [`ConcurrentServer::run`]: the closure's return value
/// plus the stream's statistics.
#[derive(Debug)]
pub struct ConcurrentOutcome<R> {
    /// Whatever the body closure returned.
    pub value: R,
    /// Aggregate statistics of the served stream. For the concurrent
    /// runtime, [`ServerStats::serve_wall_seconds`] is the wall-clock
    /// lifetime of the pool (body plus final drain), so
    /// [`ServerStats::throughput_rps`] reflects end-to-end stream
    /// throughput rather than summed per-worker busy time.
    pub stats: ServerStats,
    /// The durability store handed to
    /// [`ConcurrentServer::run_prepared_durable`], returned to the caller
    /// after a final commitlog sync — reuse it to keep persisting, or
    /// drop it to release the data dir. `None` for ephemeral runs.
    pub durability: Option<Durability>,
}

/// A ticket for one accepted request; redeem with
/// [`PendingPrediction::wait`].
///
/// Owns no borrow of the runtime, so tickets may outlive the
/// [`ConcurrentServer::run`] scope: every accepted request is answered
/// before the pool shuts down, and the response stays buffered in the
/// ticket's channel.
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<Prediction, SnapleError>>,
}

impl PendingPrediction {
    /// Blocks until the request's response (or its error) arrives.
    ///
    /// # Errors
    ///
    /// Propagates the [`SnapleError`] of the underlying execute.
    pub fn wait(self) -> Result<Prediction, SnapleError> {
        self.rx.recv().unwrap_or_else(|_| {
            // Unreachable through the public API — the pool answers every
            // accepted job before shutting down — but a lost channel must
            // not panic a caller.
            Err(SnapleError::InvalidConfig(
                "concurrent server shut down before answering".to_owned(),
            ))
        })
    }

    /// Returns the response if it is already available, or the ticket
    /// back if the request is still in flight.
    ///
    /// # Errors
    ///
    /// As [`PendingPrediction::wait`], once the response is available.
    pub fn try_wait(self) -> Result<Result<Prediction, SnapleError>, PendingPrediction> {
        match self.rx.try_recv() {
            Ok(result) => Ok(result),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            // A lost sender will never answer: surface the same error
            // wait() reports instead of letting a poll loop spin forever.
            Err(mpsc::TryRecvError::Disconnected) => Ok(Err(SnapleError::InvalidConfig(
                "concurrent server shut down before answering".to_owned(),
            ))),
        }
    }
}

/// A cloneable, thread-safe handle into a running [`ConcurrentServer`]:
/// submit requests, apply epoch updates, drain the queue.
///
/// Handles are `Copy` — pass them freely into threads spawned inside the
/// run closure to generate concurrent load.
pub struct ServeHandle<'h, 'g> {
    shared: &'h Shared<'g>,
}

impl Clone for ServeHandle<'_, '_> {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for ServeHandle<'_, '_> {}

impl ServeHandle<'_, '_> {
    /// Submits one request, blocking while the queue is full, and returns
    /// a ticket redeemable for the response.
    ///
    /// # Errors
    ///
    /// Currently infallible (the signature matches
    /// [`ServeHandle::try_submit`] so call sites can switch between
    /// blocking and failing backpressure without restructuring).
    pub fn submit(&self, queries: &QuerySet) -> Result<PendingPrediction, SnapleError> {
        self.enqueue(queries, true)
    }

    /// Submits one request without blocking: if the queue is at capacity
    /// the request is rejected with [`SnapleError::QueueFull`] — the
    /// backpressure signal that keeps memory bounded under overload.
    ///
    /// # Errors
    ///
    /// [`SnapleError::QueueFull`] when the submission queue is at
    /// capacity.
    pub fn try_submit(&self, queries: &QuerySet) -> Result<PendingPrediction, SnapleError> {
        self.enqueue(queries, false)
    }

    fn enqueue(&self, queries: &QuerySet, block: bool) -> Result<PendingPrediction, SnapleError> {
        let (tx, rx) = mpsc::channel();
        let mut q = crate::sync::lock(&self.shared.queue);
        while q.jobs.len() >= self.shared.capacity {
            if !block {
                return Err(SnapleError::QueueFull {
                    capacity: self.shared.capacity,
                });
            }
            q = crate::sync::wait(&self.shared.space_cv, q);
        }
        q.jobs.push_back(Job {
            queries: queries.clone(),
            submitted: Instant::now(),
            reply: tx,
        });
        drop(q);
        self.shared.jobs_cv.notify_one();
        Ok(PendingPrediction { rx })
    }

    /// Submits one request and blocks until its response arrives — the
    /// round-trip convenience mirroring
    /// [`Server::serve`](crate::serve::Server::serve).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying execute.
    pub fn serve(&self, queries: &QuerySet) -> Result<Prediction, SnapleError> {
        self.submit(queries)?.wait()
    }

    /// Applies a graph-update batch by **epoch swap**: the post-delta
    /// snapshot is forked off to the side
    /// ([`PreparedPredictor::fork_with_delta`]) while workers keep
    /// reading the current epoch, then published atomically. Batches
    /// popped after the swap see the new epoch; in-flight batches finish
    /// on the old one — reads never block on the update, and no response
    /// ever mixes the two graphs.
    ///
    /// Concurrent updaters are serialized so every delta lands (each fork
    /// starts from the previously published epoch).
    ///
    /// In a [`ConcurrentServer::run_prepared_durable`] run the delta is
    /// appended to the commitlog between the fork and the swap — the
    /// write-ahead serialization point: an epoch is never observable
    /// before its delta is on disk, and a logging failure rejects the
    /// update while the current epoch keeps serving.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the fork, or
    /// [`SnapleError::Durability`] when the commitlog append fails; on
    /// error no swap happens and the current epoch keeps serving.
    pub fn apply_update(&self, delta: &GraphDelta) -> Result<DeltaStats, SnapleError> {
        let _updates_serialized = crate::sync::lock(&self.shared.update_lock);
        let current = Arc::clone(&crate::sync::read(&self.shared.snapshot));
        // The expensive part happens here, outside every lock readers use.
        let (forked, applied) = current.prepared.fork_with_delta(delta)?;
        // Write-ahead: log before the swap (under the update lock, so log
        // order matches epoch order). On failure the forked snapshot is
        // dropped and readers never see the unlogged epoch.
        if let Some(durable) = &self.shared.durability {
            crate::sync::lock(durable)
                .record(delta)
                .map_err(|e| SnapleError::Durability {
                    message: e.to_string(),
                })?;
        }
        {
            let mut slot = crate::sync::write(&self.shared.snapshot);
            *slot = Arc::new(Snapshot {
                prepared: forked,
                epoch: current.epoch + 1,
            });
        }
        let mut g = crate::sync::lock(&self.shared.gauges);
        g.updates += 1;
        g.edges_inserted += applied.inserted_edges;
        g.edges_removed += applied.removed_edges;
        g.delta_apply_seconds += applied.apply_wall_seconds;
        g.delta_touched_partitions += applied.touched_partitions;
        Ok(applied)
    }

    /// The current epoch number: 0 at start, +1 per applied update.
    pub fn epoch(&self) -> u64 {
        crate::sync::read(&self.shared.snapshot).epoch
    }

    /// Number of requests currently waiting in the submission queue.
    pub fn queue_len(&self) -> usize {
        crate::sync::lock(&self.shared.queue).jobs.len()
    }

    /// Blocks until every accepted request has been answered (queue empty
    /// and no batch in flight) — the graceful quiesce point before an
    /// ordered update or shutdown.
    pub fn drain(&self) {
        let mut q = crate::sync::lock(&self.shared.queue);
        while !q.jobs.is_empty() || q.in_flight > 0 {
            q = crate::sync::wait(&self.shared.idle_cv, q);
        }
    }
}

/// The concurrent serving runtime. See the [module docs](self) for the
/// architecture; [`ConcurrentServer::run`] is the entry point.
pub struct ConcurrentServer;

impl ConcurrentServer {
    /// Prepares `predictor` once, then runs `body` against a pool of
    /// worker threads serving the prepared snapshot.
    ///
    /// The pool lives exactly as long as `body`: when it returns, the
    /// queue closes, workers finish every accepted request, and the
    /// joined pool's statistics are returned alongside `body`'s value.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from [`Predictor::prepare`]. Errors
    /// inside the stream surface per request (through
    /// [`PendingPrediction::wait`]), not here.
    pub fn run<'g, R>(
        predictor: &'g dyn Predictor,
        graph: &'g dyn GraphStore,
        cluster: &'g ClusterSpec,
        options: ConcurrentOptions<'g>,
        body: impl FnOnce(ServeHandle<'_, 'g>) -> R,
    ) -> Result<ConcurrentOutcome<R>, SnapleError> {
        let started = Instant::now();
        let prepared = predictor.prepare(&PrepareRequest::new(graph, cluster))?;
        let setup_wall_seconds = started.elapsed().as_secs_f64();
        let mut outcome = ConcurrentServer::run_prepared(prepared, options, body);
        outcome.stats.setup_wall_seconds = setup_wall_seconds;
        Ok(outcome)
    }

    /// Runs the pool over an already-prepared predictor (e.g. one whose
    /// deployment is shared with other consumers).
    pub fn run_prepared<'g, R>(
        prepared: Box<dyn PreparedPredictor + 'g>,
        options: ConcurrentOptions<'g>,
        body: impl FnOnce(ServeHandle<'_, 'g>) -> R,
    ) -> ConcurrentOutcome<R> {
        ConcurrentServer::run_inner(prepared, options, None, body).0
    }

    /// Runs the pool with a [`Durability`] store attached: every
    /// [`ServeHandle::apply_update`] appends its delta to the commitlog
    /// *before* the epoch swap becomes observable (write-ahead), and the
    /// store checkpoints compacted snapshots at its configured cadence.
    ///
    /// Replay deltas recovered by [`Durability::open`] must be folded
    /// into `prepared` (via
    /// [`PreparedPredictor::apply_delta`]) *before* calling this, so they
    /// are not re-logged — see the [serve module
    /// docs](crate::serve#restartable-serving) for the protocol.
    ///
    /// The store comes back in [`ConcurrentOutcome::durability`] after a
    /// final commitlog flush, so a caller can keep persisting across
    /// runs.
    ///
    /// # Errors
    ///
    /// [`SnapleError::Durability`] when the *final* commitlog flush
    /// fails — the data dir still recovers to the last synced frame.
    /// Errors inside the stream surface per request or per
    /// `apply_update`, not here.
    pub fn run_prepared_durable<'g, R>(
        prepared: Box<dyn PreparedPredictor + 'g>,
        options: ConcurrentOptions<'g>,
        durability: Durability,
        body: impl FnOnce(ServeHandle<'_, 'g>) -> R,
    ) -> Result<ConcurrentOutcome<R>, SnapleError> {
        let (outcome, sync_err) =
            ConcurrentServer::run_inner(prepared, options, Some(durability), body);
        match sync_err {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// The shared pool loop behind [`ConcurrentServer::run_prepared`] and
    /// [`ConcurrentServer::run_prepared_durable`]. Returns the outcome
    /// plus the final durability flush's error, if any (always `None`
    /// without a store).
    fn run_inner<'g, R>(
        prepared: Box<dyn PreparedPredictor + 'g>,
        options: ConcurrentOptions<'g>,
        durability: Option<Durability>,
        body: impl FnOnce(ServeHandle<'_, 'g>) -> R,
    ) -> (ConcurrentOutcome<R>, Option<SnapleError>) {
        let setup = prepared.setup().clone();
        let shared = Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(options.queue_capacity),
                in_flight: 0,
                open: true,
            }),
            jobs_cv: Condvar::new(),
            space_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            snapshot: RwLock::new(Arc::new(Snapshot { prepared, epoch: 0 })),
            update_lock: Mutex::new(()),
            durability: durability.map(Mutex::new),
            gauges: Mutex::new(Gauges::default()),
            capacity: options.queue_capacity,
            batch: options.batch,
            seed: options.seed,
            attributes: options.attributes,
        };
        let serve_started = Instant::now();
        let value = thread::scope(|scope| {
            for _ in 0..options.workers {
                scope.spawn(|| worker_loop(&shared));
            }
            // Close the queue when the body finishes — INCLUDING by
            // panic: without the drop guard, an unwinding body would
            // leave `open == true`, the workers parked on `jobs_cv`
            // forever, and `thread::scope` joining forever instead of
            // propagating the panic. On the normal path workers still
            // drain every accepted job before exiting.
            let _close_on_exit = CloseQueueGuard { shared: &shared };
            body(ServeHandle { shared: &shared })
        });
        let serve_wall_seconds = serve_started.elapsed().as_secs_f64();
        // The pool is joined: take the store back, flush the commitlog
        // tail, and fold its counters into the stream stats.
        let durability = shared.durability.map(crate::sync::into_inner);
        let gauges = crate::sync::into_inner(shared.gauges);
        let (durability, sync_err) = match durability {
            Some(mut durable) => {
                let err = durable.sync().err().map(|e| SnapleError::Durability {
                    message: e.to_string(),
                });
                (Some(durable), err)
            }
            None => (None, None),
        };
        let stats = ServerStats {
            requests: gauges.requests,
            batches: gauges.batches,
            queries_received: gauges.queries_received,
            union_queries: gauges.union_queries,
            simulated_seconds: gauges.simulated_seconds,
            serve_wall_seconds,
            setup_wall_seconds: setup.prepare_wall_seconds,
            partition_build_seconds: setup.partition_build_seconds,
            replication_factor: setup.replication_factor,
            updates: gauges.updates,
            edges_inserted: gauges.edges_inserted,
            edges_removed: gauges.edges_removed,
            delta_apply_seconds: gauges.delta_apply_seconds,
            delta_touched_partitions: gauges.delta_touched_partitions,
            latency: gauges.latency,
            workers: options.workers,
            durability: durability.as_ref().map(|d| d.stats().clone()),
        };
        (
            ConcurrentOutcome {
                value,
                stats,
                durability,
            },
            sync_err,
        )
    }
}

/// Closes the submission queue on drop — the unwind-safe shutdown signal
/// of [`ConcurrentServer::run_prepared`].
struct CloseQueueGuard<'h, 'g> {
    shared: &'h Shared<'g>,
}

impl Drop for CloseQueueGuard<'_, '_> {
    fn drop(&mut self) {
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.open = false;
        drop(q);
        self.shared.jobs_cv.notify_all();
    }
}

/// Returns a batch's in-flight count on drop — also when the execution
/// panics, so a single worker failure cannot wedge [`ServeHandle::drain`]
/// (the panic itself still propagates when the scope joins).
struct InFlightGuard<'h, 'g> {
    shared: &'h Shared<'g>,
    taken: usize,
}

impl Drop for InFlightGuard<'_, '_> {
    fn drop(&mut self) {
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.in_flight -= self.taken;
        if q.jobs.is_empty() && q.in_flight == 0 {
            self.shared.idle_cv.notify_all();
        }
    }
}

/// One worker: pop up to `batch` jobs, execute them as a coalesced run
/// against the current epoch's snapshot, reply, repeat until the queue is
/// closed *and* empty.
fn worker_loop(shared: &Shared<'_>) {
    loop {
        let jobs: Vec<Job> = {
            let mut q = crate::sync::lock(&shared.queue);
            loop {
                if !q.jobs.is_empty() {
                    break;
                }
                if !q.open {
                    return;
                }
                q = crate::sync::wait(&shared.jobs_cv, q);
            }
            let n = q.jobs.len().min(shared.batch);
            let jobs: Vec<Job> = q.jobs.drain(..n).collect();
            q.in_flight += n;
            drop(q);
            // Freed `n` queue slots; wake blocked submitters.
            shared.space_cv.notify_all();
            jobs
        };
        let _in_flight = InFlightGuard {
            shared,
            taken: jobs.len(),
        };

        // Pin this batch to the current epoch: the Arc clone is the only
        // synchronization the read path needs, and it keeps the snapshot
        // alive even if an update swaps the epoch mid-run.
        let snapshot = Arc::clone(&crate::sync::read(&shared.snapshot));
        let started = Instant::now();
        let requests: Vec<QuerySet> = jobs.iter().map(|j| j.queries.clone()).collect();
        let result = execute_coalesced(
            snapshot.prepared.as_ref(),
            &requests,
            shared.attributes,
            shared.seed,
        );

        match result {
            Ok((responses, union_len, simulated_seconds)) => {
                let elapsed = started.elapsed().as_secs_f64();
                let mut g = crate::sync::lock(&shared.gauges);
                g.requests += requests.len();
                g.batches += 1;
                g.queries_received += requests.iter().map(QuerySet::len).sum::<usize>();
                g.union_queries += union_len;
                g.simulated_seconds += simulated_seconds;
                let _ = elapsed; // per-batch wall folds into pool lifetime
                for job in &jobs {
                    g.latency.record(job.submitted.elapsed().as_secs_f64());
                }
                drop(g);
                for (job, response) in jobs.into_iter().zip(responses) {
                    // A dropped ticket just discards the response.
                    let _ = job.reply.send(Ok(response));
                }
            }
            Err(e) => {
                // Same contract as the sequential server: a failing batch
                // counts nothing — the error goes to its requesters, the
                // stream statistics stay untouched.
                for job in jobs {
                    let _ = job.reply.send(Err(e.clone()));
                }
            }
        }
        // `_in_flight` drops here, returning the batch's count and waking
        // any `drain()` waiter once the pool is idle.
    }
}

/// Unions the batch's query sets, executes once, and demultiplexes —
/// exactly [`Server::serve_batch`](crate::serve::Server::serve_batch)'s
/// shared-run semantics, against an explicit snapshot.
fn execute_coalesced(
    prepared: &dyn PreparedPredictor,
    requests: &[QuerySet],
    attributes: Option<&[Vec<u32>]>,
    seed: Option<u64>,
) -> Result<(Vec<Prediction>, usize, f64), SnapleError> {
    let union: QuerySet = requests.iter().flat_map(QuerySet::iter).collect();
    let mut exec = ExecuteRequest::new().with_queries(&union);
    if let Some(attrs) = attributes {
        exec = exec.with_attributes(attrs);
    }
    if let Some(seed) = seed {
        exec = exec.with_seed(seed);
    }
    let shared_run = prepared.execute(&exec)?;
    let simulated = shared_run.simulated_seconds();
    let responses = demultiplex(&shared_run, requests);
    Ok((responses, union.len(), simulated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NamedScore, SnapleConfig};
    use crate::predictor::Snaple;
    use snaple_graph::gen::datasets;
    use snaple_graph::CsrGraph;

    fn setup() -> (CsrGraph, ClusterSpec, Snaple) {
        let graph = datasets::GOWALLA.emulate(0.004, 3);
        let cluster = ClusterSpec::type_ii(4);
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .k(5)
                .klocal(Some(10)),
        );
        (graph, cluster, snaple)
    }

    #[test]
    fn round_trips_answer_requests_and_count_stats() {
        let (graph, cluster, snaple) = setup();
        let outcome = ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(2),
            |handle| {
                let q = QuerySet::sample(graph.num_vertices(), 30, 1);
                let first = handle.serve(&q).unwrap();
                let second = handle.serve(&q).unwrap();
                for (u, preds) in first.iter() {
                    assert_eq!(preds, second.for_vertex(u), "repeat request diverged");
                }
                assert_eq!(handle.epoch(), 0);
                handle.queue_len()
            },
        )
        .unwrap();
        assert_eq!(outcome.value, 0, "round trips leave no queue backlog");
        let stats = outcome.stats;
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.latency.count(), 2);
        assert!(stats.latency.p50() > 0.0);
        assert!(stats.serve_wall_seconds > 0.0);
        assert!(stats.setup_wall_seconds > 0.0);
        assert!(stats.replication_factor >= 1.0);
    }

    #[test]
    fn failing_requests_report_their_error_and_count_nothing() {
        let (graph, cluster, snaple) = setup();
        let outcome = ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(2),
            |handle| {
                let bad = QuerySet::from_indices([graph.num_vertices() as u32 + 7]);
                let err = handle.serve(&bad).unwrap_err();
                assert!(matches!(err, SnapleError::InvalidConfig(_)), "{err}");
                // The pool survives the failure.
                let good = QuerySet::sample(graph.num_vertices(), 10, 0);
                handle.serve(&good).unwrap();
            },
        )
        .unwrap();
        assert_eq!(outcome.stats.requests, 1, "failed request must not count");
        assert_eq!(outcome.stats.latency.count(), 1);
    }

    #[test]
    fn worker_batches_coalesce_but_stay_bit_identical() {
        let (graph, cluster, snaple) = setup();
        let requests: Vec<QuerySet> = (0..6)
            .map(|i| QuerySet::sample(graph.num_vertices(), 25, i))
            .collect();
        // Individual responses through a batch=1 pool...
        let solo = ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(1).batch(1),
            |handle| {
                requests
                    .iter()
                    .map(|q| handle.serve(q).unwrap())
                    .collect::<Vec<_>>()
            },
        )
        .unwrap();
        // ...versus a coalescing pool fed all requests up front.
        let coalesced = ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(1).batch(8),
            |handle| {
                let pending: Vec<PendingPrediction> =
                    requests.iter().map(|q| handle.submit(q).unwrap()).collect();
                pending
                    .into_iter()
                    .map(|p| p.wait().unwrap())
                    .collect::<Vec<_>>()
            },
        )
        .unwrap();
        assert!(
            coalesced.stats.batches < solo.stats.batches,
            "batch=8 must coalesce: {} !< {}",
            coalesced.stats.batches,
            solo.stats.batches
        );
        for (request, (a, b)) in requests.iter().zip(solo.value.iter().zip(&coalesced.value)) {
            for q in request.iter() {
                assert_eq!(a.for_vertex(q), b.for_vertex(q), "row {q}");
            }
        }
    }

    #[test]
    fn tickets_outlive_the_pool_with_buffered_responses() {
        let (graph, cluster, snaple) = setup();
        let q = QuerySet::sample(graph.num_vertices(), 15, 2);
        let outcome = ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(1),
            |handle| handle.submit(&q).unwrap(),
        )
        .unwrap();
        // The run scope has ended; the accepted request was still served.
        let prediction = outcome.value.wait().unwrap();
        assert_eq!(prediction.num_vertices(), graph.num_vertices());
        assert_eq!(outcome.stats.requests, 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn body_panics_propagate_instead_of_hanging_the_pool() {
        // Regression: the queue used to close only on the body's normal
        // return path, so a panicking body left the workers parked on
        // the job condvar and thread::scope joining forever. The close
        // guard must run during unwind, letting the panic propagate.
        let (graph, cluster, snaple) = setup();
        let _ = ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(2),
            |handle| {
                let q = QuerySet::sample(graph.num_vertices(), 10, 0);
                handle.serve(&q).unwrap();
                panic!("boom");
                #[allow(unreachable_code)]
                ()
            },
        );
    }

    #[test]
    fn durable_run_logs_updates_and_returns_the_store() {
        let (graph, cluster, snaple) = setup();
        let dir = std::env::temp_dir().join(format!("snaple-conc-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = snaple_store::DurabilityOptions::default();
        let (durable, recovered, _report) =
            Durability::open(&dir, &graph, b"cfg", opts.clone()).unwrap();
        assert!(recovered.is_none(), "fresh dir recovers nothing");
        let prepared = snaple
            .prepare(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let outcome = ConcurrentServer::run_prepared_durable(
            prepared,
            ConcurrentOptions::default().workers(1),
            durable,
            |handle| {
                let mut delta = GraphDelta::new();
                delta.insert(1, 2);
                handle.apply_update(&delta).unwrap();
                assert_eq!(handle.epoch(), 1);
                handle
                    .serve(&QuerySet::sample(graph.num_vertices(), 10, 0))
                    .unwrap();
            },
        )
        .unwrap();
        let folded = outcome.stats.durability.as_ref().unwrap();
        assert_eq!(folded.logged_deltas, 1);
        let durable = outcome.durability.unwrap();
        assert_eq!(durable.next_seq(), 1);
        drop(durable);
        // Reopen: the epoch swap's delta replays.
        let (_d2, recovered, report) = Durability::open(&dir, &graph, b"cfg", opts).unwrap();
        let recovered = recovered.unwrap();
        assert_eq!(recovered.replay.len(), 1);
        assert!(!report.repaired(), "{}", report.summary());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn try_wait_returns_the_ticket_until_the_response_lands() {
        let (graph, cluster, snaple) = setup();
        let q = QuerySet::sample(graph.num_vertices(), 15, 2);
        ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(1),
            |handle| {
                let mut ticket = handle.submit(&q).unwrap();
                loop {
                    match ticket.try_wait() {
                        Ok(result) => {
                            result.unwrap();
                            break;
                        }
                        Err(back) => ticket = back,
                    }
                }
            },
        )
        .unwrap();
    }
}
