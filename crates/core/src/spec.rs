//! Declarative score specifications — the column type of a
//! [`ScorePlan`](crate::ScorePlan).
//!
//! A [`ScoreSpec`] describes one prediction score: a similarity kernel (or
//! a weighted blend of kernels), a path combinator `⊗`, an aggregator `⊕`,
//! and the per-column parameters (`k`, column weight, linear-combinator
//! `α`). Specs are built programmatically ([`ScoreSpec::named`],
//! [`ScoreSpec::from_components`]) or parsed from compact strings designed
//! for CLI flags and config files.
//!
//! # Spec grammar
//!
//! ```text
//! plan   := spec { ',' spec }
//! spec   := blend { '@' param }
//! blend  := term { '+' term }
//! term   := kernel [ '*' WEIGHT ]
//! kernel := similarity name | Table-3 configuration name
//! param  := 'k' INT              per-column predictions (default 5)
//!         | 'w' FLOAT            column weight (default 1)
//!         | 'alpha' FLOAT        linear-combinator weight α (default 0.9)
//!         | 'comb=' NAME         combinator: linear eucl geom sum count
//!         | 'agg=' NAME          aggregator: sum mean geom max harmonic
//!         | 'klocal' (INT|'inf') plan-scoped sampling parameter
//!         | 'thr' (INT|'inf')    plan-scoped truncation threshold `thrΓ`
//!         | 'depth' ('2'|'3')    plan-scoped scored path length
//!         | 'sel' NAME           plan-scoped sampling policy: max min rnd
//! ```
//!
//! Examples:
//!
//! * `jaccard@k16` — Jaccard similarity, default linear/Sum scoring,
//!   16 predictions per vertex.
//! * `cosine*0.7+common@depth2` — a weighted kernel blend
//!   `0.7·cosine + 1·common-neighbors` scored over 2-hop paths.
//! * `linearSum@alpha0.8`, `counter`, `PPR` — the paper's Table 3 rows
//!   (see [`NamedScore`]) with optional parameter overrides.
//! * `invdeg@comb=sum@agg=mean@w0.5` — a fully spelled-out column.
//!
//! `klocal`/`thr`/`depth`/`sel` configure the *shared sweep* a plan runs,
//! so every spec of a plan must agree on them (the plan constructor
//! reports conflicts); `k`, `w`, `alpha`, `comb`, `agg` and the kernel
//! blend are free per column.
//!
//! Kernel, combinator and aggregator names resolve through a
//! [`Registry`]; [`Registry::builtin`] covers everything shipped in
//! [`similarity`], [`combinator`] and [`aggregator`], and applications can
//! [`register`](Registry::register_kernel) their own kernels and parse
//! with [`ScoreSpec::parse_with`].

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::aggregator::{self, Aggregator};
use crate::combinator::{self, Combinator};
use crate::config::{NamedScore, PathLength, ScoreComponents, SelectionPolicy};
use crate::error::SnapleError;
use crate::similarity::{self, Similarity};

/// Resolves kernel/combinator/aggregator names for the spec parser.
///
/// [`Registry::builtin`] knows every component shipped with the crate;
/// custom components slot in via the `register_*` methods:
///
/// ```
/// use std::sync::Arc;
/// use snaple_core::similarity::Dice;
/// use snaple_core::spec::{Registry, ScoreSpec};
///
/// let mut registry = Registry::builtin();
/// registry.register_kernel("my-dice", || Arc::new(Dice));
/// let spec = ScoreSpec::parse_with(&registry, "my-dice@k3")?;
/// assert_eq!(spec.components().similarity.name(), "dice");
/// # Ok::<(), snaple_core::SnapleError>(())
/// ```
pub struct Registry {
    kernels: BTreeMap<&'static str, KernelFactory>,
    combinators: BTreeMap<&'static str, CombinatorFactory>,
    aggregators: BTreeMap<&'static str, AggregatorFactory>,
}

type KernelFactory = Box<dyn Fn() -> Arc<dyn Similarity> + Send + Sync>;
type CombinatorFactory = Box<dyn Fn(f32) -> Arc<dyn Combinator> + Send + Sync>;
type AggregatorFactory = Box<dyn Fn() -> Arc<dyn Aggregator> + Send + Sync>;

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("kernels", &self.kernel_names())
            .field("combinators", &self.combinator_names())
            .field("aggregators", &self.aggregator_names())
            .finish()
    }
}

impl Registry {
    /// An empty registry (no names resolve).
    pub fn empty() -> Self {
        Registry {
            kernels: BTreeMap::new(),
            combinators: BTreeMap::new(),
            aggregators: BTreeMap::new(),
        }
    }

    /// The registry of everything shipped with the crate.
    pub fn builtin() -> Self {
        let mut r = Registry::empty();
        // The shared instance: a parsed `jaccard` column then holds the
        // same Arc as the selection similarity, and execution computes
        // it once per edge (see ScoreComponents::shares_selection_similarity).
        r.register_kernel("jaccard", similarity::shared_jaccard);
        r.register_kernel("common", || Arc::new(similarity::CommonNeighbors));
        r.register_kernel("cosine", || Arc::new(similarity::Cosine));
        r.register_kernel("dice", || Arc::new(similarity::Dice));
        r.register_kernel("overlap", || Arc::new(similarity::Overlap));
        r.register_kernel("invdeg", || Arc::new(similarity::InverseDegree));
        r.register_kernel("unit", || Arc::new(similarity::Unit));
        r.register_combinator("linear", |alpha| Arc::new(combinator::Linear::new(alpha)));
        r.register_combinator("eucl", |_| Arc::new(combinator::Euclidean));
        r.register_combinator("geom", |_| Arc::new(combinator::Geometric));
        r.register_combinator("sum", |_| Arc::new(combinator::Arithmetic));
        r.register_combinator("count", |_| Arc::new(combinator::Count));
        r.register_aggregator("sum", || Arc::new(aggregator::Sum));
        r.register_aggregator("mean", || Arc::new(aggregator::Mean));
        r.register_aggregator("geom", || Arc::new(aggregator::GeometricMean));
        r.register_aggregator("max", || Arc::new(aggregator::Max));
        r.register_aggregator("harmonic", || Arc::new(aggregator::Harmonic));
        r
    }

    /// Registers a similarity kernel under `name`.
    pub fn register_kernel(
        &mut self,
        name: &'static str,
        factory: impl Fn() -> Arc<dyn Similarity> + Send + Sync + 'static,
    ) -> &mut Self {
        self.kernels.insert(name, Box::new(factory));
        self
    }

    /// Registers a combinator under `name`; the factory receives the
    /// spec's `α` (only [`combinator::Linear`] uses it among the
    /// built-ins).
    pub fn register_combinator(
        &mut self,
        name: &'static str,
        factory: impl Fn(f32) -> Arc<dyn Combinator> + Send + Sync + 'static,
    ) -> &mut Self {
        self.combinators.insert(name, Box::new(factory));
        self
    }

    /// Registers an aggregator under `name` (matched case-insensitively).
    pub fn register_aggregator(
        &mut self,
        name: &'static str,
        factory: impl Fn() -> Arc<dyn Aggregator> + Send + Sync + 'static,
    ) -> &mut Self {
        self.aggregators.insert(name, Box::new(factory));
        self
    }

    /// Registered kernel names, sorted.
    pub fn kernel_names(&self) -> Vec<&'static str> {
        self.kernels.keys().copied().collect()
    }

    /// Registered combinator names, sorted.
    pub fn combinator_names(&self) -> Vec<&'static str> {
        self.combinators.keys().copied().collect()
    }

    /// Registered aggregator names, sorted.
    pub fn aggregator_names(&self) -> Vec<&'static str> {
        self.aggregators.keys().copied().collect()
    }

    fn kernel(&self, name: &str) -> Option<Arc<dyn Similarity>> {
        self.kernels.get(name).map(|f| f())
    }

    fn combinator(&self, name: &str, alpha: f32) -> Option<Arc<dyn Combinator>> {
        self.combinators.get(name).map(|f| f(alpha))
    }

    fn aggregator(&self, name: &str) -> Option<Arc<dyn Aggregator>> {
        // Case-insensitive on both sides: the builtin keys are lowercase
        // but users may register display-cased names like "Max".
        self.aggregators
            .iter()
            .find(|(key, _)| key.eq_ignore_ascii_case(name))
            .map(|(_, f)| f())
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

/// Plan-scoped parameters a spec string may request (`@klocal…`,
/// `@thr…`, `@depth…`, `@sel…`).
///
/// These configure the shared sweep, so a [`ScorePlan`](crate::ScorePlan)
/// requires all of its specs to agree on them; unset fields inherit the
/// plan's [`PlanConfig`](crate::PlanConfig).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SharedParams {
    /// Requested sampling parameter `klocal` (`Some(None)` = `inf`).
    pub klocal: Option<Option<usize>>,
    /// Requested truncation threshold `thrΓ` (`Some(None)` = `inf`).
    pub thr_gamma: Option<Option<usize>>,
    /// Requested scored path length.
    pub depth: Option<PathLength>,
    /// Requested neighbor-sampling policy.
    pub selection: Option<SelectionPolicy>,
}

/// One declarative score column: similarity kernel(s), combinator,
/// aggregator, and per-column parameters.
///
/// See the [module docs](self) for the string grammar. Specs are
/// serializable: [`fmt::Display`] renders the canonical spec string and
/// [`FromStr`]/[`ScoreSpec::parse`] read it back.
#[derive(Clone, Debug)]
pub struct ScoreSpec {
    label: String,
    components: ScoreComponents,
    k: Option<usize>,
    weight: f32,
    alpha: f32,
    shared: SharedParams,
    /// Non-default params rendered back by `Display` (canonical order).
    suffix: String,
}

impl ScoreSpec {
    /// A spec for one of the paper's Table 3 configurations with its
    /// default parameters (`α = 0.9`, plan-default `k`, weight 1).
    pub fn named(score: NamedScore) -> Self {
        let alpha = 0.9;
        ScoreSpec {
            label: score.name().to_owned(),
            components: score.resolve(alpha),
            k: None,
            weight: 1.0,
            alpha,
            shared: SharedParams::default(),
            suffix: String::new(),
        }
    }

    /// A spec from fully custom [`ScoreComponents`].
    ///
    /// The resulting spec displays as `label` but is not re-parseable
    /// (custom components have no string form).
    pub fn from_components(label: impl Into<String>, components: ScoreComponents) -> Self {
        ScoreSpec {
            label: label.into(),
            components,
            k: None,
            weight: 1.0,
            alpha: 0.9,
            shared: SharedParams::default(),
            suffix: String::new(),
        }
    }

    /// Parses a spec string against the [built-in registry]
    /// (Registry::builtin).
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] describing the first offending
    /// token and the valid alternatives.
    pub fn parse(s: &str) -> Result<Self, SnapleError> {
        ScoreSpec::parse_with(&Registry::builtin(), s)
    }

    /// Parses a spec string, resolving names through `registry`.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] describing the first offending
    /// token and the valid alternatives.
    pub fn parse_with(registry: &Registry, s: &str) -> Result<Self, SnapleError> {
        parse_spec(registry, s)
    }

    /// Sets the per-column number of predictions (`@kN`).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Sets the column weight (`@wF`) used by
    /// [`ScoreMatrix::combined`](crate::ScoreMatrix::combined).
    pub fn weight(mut self, weight: f32) -> Self {
        self.weight = weight;
        self
    }

    /// The canonical kernel/configuration label (without parameters).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The resolved scoring components.
    pub fn components(&self) -> &ScoreComponents {
        &self.components
    }

    /// Per-column `k`, if the spec pinned one (`None` inherits the plan
    /// default).
    pub fn k_override(&self) -> Option<usize> {
        self.k
    }

    /// Column weight for weighted combination across a plan's columns.
    pub fn column_weight(&self) -> f32 {
        self.weight
    }

    /// Linear-combinator weight `α` the spec was resolved with.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Plan-scoped parameters this spec requests.
    pub fn shared_params(&self) -> &SharedParams {
        &self.shared
    }

    /// Rejects non-finite or non-positive weights and zero `k`.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), SnapleError> {
        if !self.weight.is_finite() || self.weight <= 0.0 {
            return Err(SnapleError::InvalidConfig(format!(
                "spec {:?}: column weight must be finite and positive, got {}",
                self.label, self.weight
            )));
        }
        if self.k == Some(0) {
            return Err(SnapleError::InvalidConfig(format!(
                "spec {:?}: k must be at least 1",
                self.label
            )));
        }
        if self.shared.klocal == Some(Some(0)) {
            return Err(SnapleError::InvalidConfig(format!(
                "spec {:?}: klocal must be at least 1 (use 'inf' to disable sampling)",
                self.label
            )));
        }
        Ok(())
    }
}

impl fmt::Display for ScoreSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.label, self.suffix)
    }
}

impl FromStr for ScoreSpec {
    type Err = SnapleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScoreSpec::parse(s)
    }
}

fn bad(msg: impl Into<String>) -> SnapleError {
    SnapleError::InvalidConfig(msg.into())
}

/// Parameter keywords, longest-match-first so `klocal8` is not read as
/// `k` with value `local8`.
const PARAM_KEYWORDS: [&str; 9] = [
    "klocal", "alpha", "depth", "comb", "agg", "thr", "sel", "k", "w",
];

/// Splits `token` into its known keyword prefix and the remainder
/// (`("", token)` when no keyword matches).
fn split_keyword(token: &str) -> (&str, &str) {
    for keyword in PARAM_KEYWORDS {
        if let Some(rest) = token.strip_prefix(keyword) {
            return (keyword, rest);
        }
    }
    ("", token)
}

fn parse_spec(registry: &Registry, s: &str) -> Result<ScoreSpec, SnapleError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(bad("empty score spec"));
    }
    let mut sections = s.split('@').map(str::trim);
    let blend = sections.next().expect("split yields at least one section");
    if blend.is_empty() {
        return Err(bad(format!("spec {s:?}: missing kernel before '@'")));
    }

    // --- Params first: α feeds the combinator factory. -----------------
    let mut k: Option<usize> = None;
    let mut weight: Option<f32> = None;
    let mut alpha: Option<f32> = None;
    let mut comb_name: Option<String> = None;
    let mut agg_name: Option<String> = None;
    let mut shared = SharedParams::default();
    for token in sections {
        let (keyword, rest) = split_keyword(token);
        let parse_inf_or = |what: &str, rest: &str| -> Result<Option<usize>, SnapleError> {
            if rest == "inf" {
                return Ok(None);
            }
            rest.parse::<usize>().map(Some).map_err(|_| {
                bad(format!(
                    "spec {s:?}: {what} expects an integer or 'inf', got {rest:?}"
                ))
            })
        };
        match keyword {
            "k" => {
                k = Some(rest.parse().map_err(|_| {
                    bad(format!("spec {s:?}: 'k' expects an integer, got {rest:?}"))
                })?)
            }
            "w" => {
                weight =
                    Some(rest.parse().map_err(|_| {
                        bad(format!("spec {s:?}: 'w' expects a number, got {rest:?}"))
                    })?)
            }
            "alpha" => {
                let a: f32 = rest.parse().map_err(|_| {
                    bad(format!(
                        "spec {s:?}: 'alpha' expects a number, got {rest:?}"
                    ))
                })?;
                if !(a.is_finite() && (0.0..=1.0).contains(&a)) {
                    return Err(bad(format!(
                        "spec {s:?}: 'alpha' must be a finite number in [0, 1], got {a}"
                    )));
                }
                alpha = Some(a);
            }
            "klocal" => shared.klocal = Some(parse_inf_or("'klocal'", rest)?),
            "thr" => shared.thr_gamma = Some(parse_inf_or("'thr'", rest)?),
            "depth" => {
                shared.depth = Some(match rest {
                    "2" => PathLength::Two,
                    "3" => PathLength::Three,
                    other => {
                        return Err(bad(format!(
                            "spec {s:?}: 'depth' must be 2 or 3, got {other:?}"
                        )))
                    }
                })
            }
            "sel" => {
                shared.selection = Some(match rest {
                    "max" => SelectionPolicy::Max,
                    "min" => SelectionPolicy::Min,
                    "rnd" => SelectionPolicy::Random,
                    other => {
                        return Err(bad(format!(
                            "spec {s:?}: 'sel' must be max, min or rnd, got {other:?}"
                        )))
                    }
                })
            }
            "comb" => {
                let Some(name) = rest.strip_prefix('=') else {
                    return Err(bad(format!(
                        "spec {s:?}: combinators are selected with 'comb=NAME'"
                    )));
                };
                comb_name = Some(name.to_owned());
            }
            "agg" => {
                let Some(name) = rest.strip_prefix('=') else {
                    return Err(bad(format!(
                        "spec {s:?}: aggregators are selected with 'agg=NAME'"
                    )));
                };
                agg_name = Some(name.to_owned());
            }
            _ => {
                return Err(bad(format!(
                    "spec {s:?}: unknown parameter {token:?} \
                     (expected k, w, alpha, comb=, agg=, klocal, thr, depth or sel)"
                )))
            }
        }
    }
    let alpha_value = alpha.unwrap_or(0.9);

    // --- The kernel blend. ----------------------------------------------
    let terms: Vec<&str> = blend.split('+').map(str::trim).collect();
    let named = if terms.len() == 1 && !terms[0].contains('*') {
        NamedScore::parse(terms[0])
    } else {
        None
    };
    let components = if let Some(score) = named {
        if comb_name.is_some() || agg_name.is_some() {
            return Err(bad(format!(
                "spec {s:?}: {} already fixes its combinator and aggregator; \
                 use a bare kernel (e.g. 'jaccard') with comb=/agg= instead",
                score.name()
            )));
        }
        score.resolve(alpha_value)
    } else {
        let mut parts: Vec<(Arc<dyn Similarity>, f32)> = Vec::with_capacity(terms.len());
        for term in &terms {
            let (name, term_weight) = match term.split_once('*') {
                None => (*term, 1.0f32),
                Some((name, w)) => {
                    let w: f32 = w.trim().parse().map_err(|_| {
                        bad(format!(
                            "spec {s:?}: kernel weight in {term:?} must be a number"
                        ))
                    })?;
                    if !w.is_finite() || w <= 0.0 {
                        return Err(bad(format!(
                            "spec {s:?}: kernel weight in {term:?} must be finite and positive"
                        )));
                    }
                    (name.trim(), w)
                }
            };
            let kernel = registry.kernel(name).ok_or_else(|| {
                bad(format!(
                    "spec {s:?}: unknown kernel {name:?} (known kernels: {}; \
                     named configurations: {})",
                    registry.kernel_names().join(", "),
                    NamedScore::all().map(|n| n.name()).join(", ")
                ))
            })?;
            parts.push((kernel, term_weight));
        }
        let similarity: Arc<dyn Similarity> = if parts.len() == 1 && parts[0].1 == 1.0 {
            parts.into_iter().next().expect("one part").0
        } else {
            Arc::new(similarity::WeightedBlend::new(parts))
        };
        let comb = comb_name.as_deref().unwrap_or("linear");
        let combinator = registry.combinator(comb, alpha_value).ok_or_else(|| {
            bad(format!(
                "spec {s:?}: unknown combinator {comb:?} (known: {})",
                registry.combinator_names().join(", ")
            ))
        })?;
        let agg = agg_name.as_deref().unwrap_or("sum");
        let aggregator = registry.aggregator(agg).ok_or_else(|| {
            bad(format!(
                "spec {s:?}: unknown aggregator {agg:?} (known: {})",
                registry.aggregator_names().join(", ")
            ))
        })?;
        ScoreComponents {
            name: blend.to_owned(),
            similarity,
            // Eq. 11 ranks sampled neighbors by the set similarity `f`;
            // Jaccard everywhere, matching the named configurations.
            selection_similarity: similarity::shared_jaccard(),
            combinator,
            aggregator,
        }
    };

    // --- Canonical suffix for Display round-trips. ----------------------
    let mut suffix = String::new();
    if let Some(k) = k {
        suffix.push_str(&format!("@k{k}"));
    }
    if let Some(w) = weight {
        suffix.push_str(&format!("@w{w}"));
    }
    if let Some(a) = alpha {
        suffix.push_str(&format!("@alpha{a}"));
    }
    if let Some(c) = &comb_name {
        suffix.push_str(&format!("@comb={c}"));
    }
    if let Some(a) = &agg_name {
        suffix.push_str(&format!("@agg={a}"));
    }
    match shared.klocal {
        Some(None) => suffix.push_str("@klocalinf"),
        Some(Some(v)) => suffix.push_str(&format!("@klocal{v}")),
        None => {}
    }
    match shared.thr_gamma {
        Some(None) => suffix.push_str("@thrinf"),
        Some(Some(v)) => suffix.push_str(&format!("@thr{v}")),
        None => {}
    }
    if let Some(d) = shared.depth {
        suffix.push_str(&format!(
            "@depth{}",
            match d {
                PathLength::Two => 2,
                PathLength::Three => 3,
            }
        ));
    }
    if let Some(sel) = shared.selection {
        suffix.push_str(&format!("@sel{}", sel.name()));
    }

    let spec = ScoreSpec {
        label: blend
            .split('+')
            .map(str::trim)
            .collect::<Vec<_>>()
            .join("+"),
        components,
        k,
        weight: weight.unwrap_or(1.0),
        alpha: alpha_value,
        shared,
        suffix,
    };
    spec.validate()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_kernel_defaults_to_linear_sum_scoring() {
        let s = ScoreSpec::parse("jaccard").unwrap();
        assert_eq!(s.label(), "jaccard");
        assert_eq!(s.components().similarity.name(), "jaccard");
        assert_eq!(s.components().combinator.name(), "linear");
        assert_eq!(s.components().aggregator.name(), "Sum");
        assert_eq!(s.k_override(), None);
        assert_eq!(s.column_weight(), 1.0);
    }

    #[test]
    fn issue_examples_parse() {
        let s = ScoreSpec::parse("jaccard@k16").unwrap();
        assert_eq!(s.k_override(), Some(16));

        let s = ScoreSpec::parse("cosine*0.7+common@depth2").unwrap();
        assert_eq!(
            s.components().similarity.name(),
            "cosine*0.7+common-neighbors"
        );
        assert_eq!(s.label(), "cosine*0.7+common");
        assert_eq!(s.shared_params().depth, Some(PathLength::Two));
    }

    #[test]
    fn named_configurations_resolve_like_the_table() {
        for named in NamedScore::all() {
            let spec = ScoreSpec::parse(named.name()).unwrap();
            let reference = named.resolve(0.9);
            assert_eq!(
                spec.components().similarity.name(),
                reference.similarity.name()
            );
            assert_eq!(
                spec.components().combinator.name(),
                reference.combinator.name()
            );
            assert_eq!(
                spec.components().aggregator.name(),
                reference.aggregator.name()
            );
        }
    }

    #[test]
    fn alpha_feeds_the_linear_combinator() {
        let s = ScoreSpec::parse("linearSum@alpha0.5").unwrap();
        assert_eq!(s.alpha(), 0.5);
        assert!((s.components().combinator.combine(1.0, 0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn explicit_combinator_and_aggregator() {
        let s = ScoreSpec::parse("invdeg@comb=sum@agg=mean@w0.5@k3").unwrap();
        assert_eq!(s.components().similarity.name(), "inverse-degree");
        assert_eq!(s.components().combinator.name(), "sum");
        assert_eq!(s.components().aggregator.name(), "Mean");
        assert_eq!(s.column_weight(), 0.5);
        assert_eq!(s.k_override(), Some(3));
    }

    #[test]
    fn shared_params_parse() {
        let s = ScoreSpec::parse("jaccard@klocal8@thr100@depth3@selrnd").unwrap();
        let shared = s.shared_params();
        assert_eq!(shared.klocal, Some(Some(8)));
        assert_eq!(shared.thr_gamma, Some(Some(100)));
        assert_eq!(shared.depth, Some(PathLength::Three));
        assert_eq!(shared.selection, Some(SelectionPolicy::Random));
        let s = ScoreSpec::parse("jaccard@klocalinf@thrinf").unwrap();
        assert_eq!(s.shared_params().klocal, Some(None));
        assert_eq!(s.shared_params().thr_gamma, Some(None));
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "jaccard@k16",
            "cosine*0.7+common@depth2",
            "linearSum@alpha0.5",
            "invdeg@comb=sum@agg=mean@w0.5@k3",
            "jaccard@klocal8@thr100@selmin",
            "counter",
        ] {
            let spec = ScoreSpec::parse(text).unwrap();
            let rendered = spec.to_string();
            let reparsed = ScoreSpec::parse(&rendered).unwrap();
            assert_eq!(reparsed.to_string(), rendered, "{text}");
            assert_eq!(
                reparsed.components().similarity.name(),
                spec.components().similarity.name()
            );
            assert_eq!(reparsed.k_override(), spec.k_override());
            assert_eq!(reparsed.shared_params(), spec.shared_params());
        }
    }

    #[test]
    fn parse_errors_name_the_problem_and_alternatives() {
        let err = ScoreSpec::parse("jacard").unwrap_err().to_string();
        assert!(err.contains("unknown kernel"), "{err}");
        assert!(err.contains("jaccard"), "must list alternatives: {err}");

        let err = ScoreSpec::parse("jaccard@bogus7").unwrap_err().to_string();
        assert!(err.contains("unknown parameter"), "{err}");

        let err = ScoreSpec::parse("jaccard@kx").unwrap_err().to_string();
        assert!(err.contains("'k' expects an integer"), "{err}");

        let err = ScoreSpec::parse("jaccard@comb=bogus")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown combinator"), "{err}");
        assert!(err.contains("linear"), "{err}");

        let err = ScoreSpec::parse("jaccard@agg=bogus")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown aggregator"), "{err}");

        let err = ScoreSpec::parse("").unwrap_err().to_string();
        assert!(err.contains("empty"), "{err}");

        let err = ScoreSpec::parse("linearSum@comb=geom")
            .unwrap_err()
            .to_string();
        assert!(err.contains("already fixes"), "{err}");

        let err = ScoreSpec::parse("jaccard@depth4").unwrap_err().to_string();
        assert!(err.contains("'depth' must be 2 or 3"), "{err}");

        let err = ScoreSpec::parse("jaccard@alphaNaN")
            .unwrap_err()
            .to_string();
        assert!(err.contains("alpha"), "{err}");
    }

    #[test]
    fn invalid_parameters_are_rejected_at_construction() {
        assert!(ScoreSpec::parse("jaccard@k0").is_err());
        assert!(ScoreSpec::parse("jaccard@klocal0").is_err());
        assert!(ScoreSpec::parse("jaccard@w0").is_err());
        assert!(ScoreSpec::parse("jaccard@w-1").is_err());
        assert!(ScoreSpec::parse("jaccard@winf").is_err());
        assert!(ScoreSpec::parse("jaccard@alpha2").is_err());
        assert!(ScoreSpec::parse("cosine*0+common").is_err());
        assert!(ScoreSpec::parse("cosine*nan+common").is_err());
    }

    #[test]
    fn blend_weights_shape_the_kernel() {
        use crate::similarity::NeighborhoodView;
        use snaple_graph::VertexId;
        let spec = ScoreSpec::parse("cosine*0.7+common").unwrap();
        let a: Vec<VertexId> = [1, 2, 3].map(VertexId::new).to_vec();
        let b: Vec<VertexId> = [2, 3, 4].map(VertexId::new).to_vec();
        let (va, vb) = (NeighborhoodView::new(&a, 3), NeighborhoodView::new(&b, 3));
        let got = spec.components().similarity.score(va, vb);
        let want =
            0.7 * similarity::Cosine.score(va, vb) + similarity::CommonNeighbors.score(va, vb);
        assert!((got - want).abs() < 1e-6);
    }

    #[test]
    fn custom_registry_kernels_resolve() {
        let mut registry = Registry::builtin();
        registry.register_kernel("always-two", || {
            #[derive(Debug)]
            struct Two;
            impl Similarity for Two {
                fn name(&self) -> &str {
                    "always-two"
                }
                fn score(
                    &self,
                    _u: crate::similarity::NeighborhoodView<'_>,
                    _v: crate::similarity::NeighborhoodView<'_>,
                ) -> f32 {
                    2.0
                }
            }
            Arc::new(Two)
        });
        let spec = ScoreSpec::parse_with(&registry, "always-two@agg=max").unwrap();
        assert_eq!(spec.components().similarity.name(), "always-two");
        assert!(ScoreSpec::parse("always-two").is_err(), "not in builtin");
    }

    #[test]
    fn from_str_matches_parse() {
        let a: ScoreSpec = "jaccard@k7".parse().unwrap();
        assert_eq!(a.k_override(), Some(7));
    }

    #[test]
    fn builtin_jaccard_shares_the_selection_instance() {
        // The parsed `jaccard` kernel IS the shared selection-similarity
        // Arc, so execution computes it once per edge.
        let spec = ScoreSpec::parse("jaccard").unwrap();
        assert!(spec.components().shares_selection_similarity());
        // A different kernel never shares.
        let spec = ScoreSpec::parse("cosine").unwrap();
        assert!(!spec.components().shares_selection_similarity());
    }

    #[test]
    fn name_colliding_custom_kernels_do_not_share_the_selection_instance() {
        // Regression: sharing is detected by Arc identity, so a custom
        // kernel whose name() collides with "jaccard" must NOT be
        // silently replaced by the selection similarity's value.
        let mut registry = Registry::builtin();
        registry.register_kernel("fakejac", || {
            #[derive(Debug)]
            struct FakeJaccard;
            impl Similarity for FakeJaccard {
                fn name(&self) -> &str {
                    "jaccard" // colliding self-reported name
                }
                fn score(
                    &self,
                    _u: crate::similarity::NeighborhoodView<'_>,
                    _v: crate::similarity::NeighborhoodView<'_>,
                ) -> f32 {
                    42.0
                }
            }
            Arc::new(FakeJaccard)
        });
        let spec = ScoreSpec::parse_with(&registry, "fakejac").unwrap();
        assert_eq!(spec.components().similarity.name(), "jaccard");
        assert!(
            !spec.components().shares_selection_similarity(),
            "a colliding name must not alias the selection similarity"
        );
    }

    #[test]
    fn aggregator_registration_is_case_insensitive_both_ways() {
        let mut registry = Registry::builtin();
        registry.register_aggregator("MyMax", || Arc::new(aggregator::Max));
        for query in ["MyMax", "mymax", "MYMAX"] {
            let spec = ScoreSpec::parse_with(&registry, &format!("jaccard@agg={query}")).unwrap();
            assert_eq!(spec.components().aggregator.name(), "Max", "{query}");
        }
        // Builtins resolve under display casing too.
        let spec = ScoreSpec::parse("jaccard@agg=Harmonic").unwrap();
        assert_eq!(spec.components().aggregator.name(), "Harmonic");
    }
}
