//! Property tests for the SNAPLE scoring framework: framework semantics
//! against a brute-force reference implementation on small random graphs.

use std::collections::HashMap;

use proptest::prelude::*;

use snaple_core::aggregator::{Aggregator, GeometricMean, Mean, Sum};
use snaple_core::combinator::{Combinator, Count, Linear};
use snaple_core::similarity::{Jaccard, Similarity};
use snaple_core::{NamedScore, NeighborhoodView, PredictRequest, Predictor, Snaple, SnapleConfig};
use snaple_gas::ClusterSpec;
use snaple_graph::{CsrGraph, GraphBuilder, VertexId};

/// Brute-force reference of the SNAPLE score (no truncation/sampling):
/// for every candidate z two hops from u, combine raw Jaccard similarities
/// along every path and aggregate.
fn reference_scores(
    graph: &CsrGraph,
    u: VertexId,
    combinator: &dyn Combinator,
    aggregator: &dyn Aggregator,
) -> HashMap<VertexId, f32> {
    let sim = |a: VertexId, b: VertexId| {
        Jaccard.score(
            NeighborhoodView::new(graph.out_neighbors(a), graph.out_degree(a)),
            NeighborhoodView::new(graph.out_neighbors(b), graph.out_degree(b)),
        )
    };
    let mut paths: HashMap<VertexId, Vec<f32>> = HashMap::new();
    for &v in graph.out_neighbors(u) {
        let s_uv = sim(u, v);
        for &z in graph.out_neighbors(v) {
            if z == u || graph.has_edge(u, z) {
                continue;
            }
            paths
                .entry(z)
                .or_default()
                .push(combinator.combine(s_uv, sim(v, z)));
        }
    }
    paths
        .into_iter()
        .map(|(z, ps)| (z, aggregator.aggregate(&ps)))
        .collect()
}

fn graph_from(edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(1);
    for (u, v) in edges {
        b.add_edge(*u, *v);
    }
    b.build()
}

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..25, 0u32..25), 1..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The GAS implementation with sampling disabled must equal the
    /// brute-force definition of the framework (paper eq. 8–10), for each
    /// aggregator family.
    #[test]
    fn gas_program_matches_brute_force(edges in edges_strategy(), spec_idx in 0usize..3) {
        let (spec, agg): (NamedScore, &dyn Aggregator) = match spec_idx {
            0 => (NamedScore::LinearSum, &Sum),
            1 => (NamedScore::LinearMean, &Mean),
            _ => (NamedScore::LinearGeom, &GeometricMean),
        };
        let graph = graph_from(&edges);
        let config = SnapleConfig::new(spec)
            .k(graph.num_vertices())
            .klocal(None)
            .thr_gamma(None)
            .seed(1);
        let combinator = Linear::new(config.alpha);
        let machine = ClusterSpec::single_machine(4, 32 << 30);
        let prediction =
            Predictor::predict(&Snaple::new(config), &PredictRequest::new(&graph, &machine))
                .unwrap();
        for u in graph.vertices() {
            let expect = reference_scores(&graph, u, &combinator, agg);
            let got: HashMap<VertexId, f32> =
                prediction.for_vertex(u).iter().copied().collect();
            prop_assert_eq!(
                got.len(),
                expect.len(),
                "vertex {} candidates: got {:?} expect {:?} ({:?})",
                u, got, expect, spec
            );
            for (z, s) in &expect {
                let g = got.get(z).copied().unwrap_or(f32::NAN);
                prop_assert!(
                    (g - s).abs() < 1e-4,
                    "vertex {} candidate {}: got {} expect {} ({:?})",
                    u, z, g, s, spec
                );
            }
        }
    }

    /// Counter scores are exactly the 2-hop path counts.
    #[test]
    fn counter_equals_path_counts(edges in edges_strategy()) {
        let graph = graph_from(&edges);
        let config = SnapleConfig::new(NamedScore::Counter)
            .k(graph.num_vertices())
            .klocal(None)
            .thr_gamma(None);
        let machine = ClusterSpec::single_machine(4, 32 << 30);
        let prediction =
            Predictor::predict(&Snaple::new(config), &PredictRequest::new(&graph, &machine))
                .unwrap();
        for u in graph.vertices() {
            let expect = reference_scores(&graph, u, &Count, &Sum);
            for (z, s) in prediction.for_vertex(u) {
                prop_assert!((s - expect[z]).abs() < 1e-6);
                prop_assert!((s.fract()).abs() < 1e-6, "counts must be integral");
            }
        }
    }

    /// Predictions are sorted, bounded by k, and never contain self or
    /// existing neighbors, under arbitrary sampling parameters.
    #[test]
    fn prediction_lists_are_well_formed(
        edges in edges_strategy(),
        k in 1usize..6,
        klocal in 1usize..8,
        thr in 1usize..10,
    ) {
        let graph = graph_from(&edges);
        let config = SnapleConfig::new(NamedScore::LinearSum)
            .k(k)
            .klocal(Some(klocal))
            .thr_gamma(Some(thr));
        let cluster = ClusterSpec::type_i(4);
        let prediction =
            Predictor::predict(&Snaple::new(config), &PredictRequest::new(&graph, &cluster))
                .unwrap();
        for (u, preds) in prediction.iter() {
            prop_assert!(preds.len() <= k);
            prop_assert!(preds.windows(2).all(|w| w[0].1 >= w[1].1));
            for &(z, s) in preds {
                prop_assert!(z != u);
                prop_assert!(s >= 0.0 && s.is_finite());
            }
        }
    }
}
