//! Crash recovery: the [`Durability`] handle tying the commitlog and
//! the snapshot store together.
//!
//! # Lifecycle
//!
//! * **First open** of a data dir seeds it: a snapshot of the caller's
//!   base graph is published at `covers_seq = 0`, so later recoveries
//!   are self-contained.
//! * **[`Durability::record`]** appends the delta to the commitlog
//!   (applying the fsync policy) *before* the server applies it — the
//!   log is a write-ahead log. Every `snapshot_every` records, the
//!   accumulated deltas are folded into the base graph with the
//!   consuming [`CsrGraph::compact_owned`] on Durability's own copy (an
//!   epoch-consistent clone — the serving predictor's state is
//!   untouched and serving continues), a new snapshot is streamed out
//!   atomically in the `SNPLG2` serving layout (see
//!   [`crate::snapshot`]), old snapshots beyond the retention window
//!   are pruned, and the log is trimmed below the oldest retained
//!   snapshot's coverage.
//! * **Reopen** = recovery: load the newest snapshot that validates
//!   (falling back to older ones on checksum failure), then replay the
//!   log tail (`seq >= covers_seq`). The caller applies the returned
//!   [`RecoveredState::replay`] deltas through its normal
//!   `apply_update` path *before* attaching the handle, reconstructing
//!   a state bit-identical to a server that never crashed. Torn log
//!   tails and corrupt snapshots surface as typed errors inside the
//!   [`RecoveryReport`] — handled, reported, never a panic.

use std::path::{Path, PathBuf};
use std::time::Instant;

use snaple_graph::{CsrGraph, GraphDelta};

use crate::log::{Commitlog, FsyncPolicy, LogOpen, TornTail};
use crate::snapshot::{SnapshotMeta, SnapshotStore};
use crate::StoreError;

/// Tuning knobs for a [`Durability`] handle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// When log appends hit the disk (default: [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Publish a snapshot after this many logged deltas; `0` disables
    /// periodic snapshots (default: 64).
    pub snapshot_every: usize,
    /// How many snapshots to retain (minimum and default: 2 — the
    /// newest plus one fallback).
    pub retain: usize,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::Always,
            snapshot_every: 64,
            retain: 2,
        }
    }
}

impl DurabilityOptions {
    /// Sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the snapshot cadence (`0` = never snapshot periodically).
    pub fn snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Sets the snapshot retention count (clamped to at least 1).
    pub fn retain(mut self, retain: usize) -> Self {
        self.retain = retain.max(1);
        self
    }
}

/// What recovery found and did — the typed trail of every error it
/// handled on the way. Folded into `ServerStats` by the serving layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// `covers_seq` of the snapshot recovery restored from (`None` =
    /// no snapshot loaded; the caller's base graph was used).
    pub snapshot_seq: Option<u64>,
    /// Newer snapshots skipped because they failed validation, with the
    /// typed error each produced.
    pub snapshots_skipped: Vec<(PathBuf, StoreError)>,
    /// Log frames replayed on top of the snapshot.
    pub frames_replayed: usize,
    /// Bytes truncated from a torn log tail (0 = the tail was clean).
    pub tail_truncated_bytes: u64,
    /// The typed error the torn tail produced, when one was truncated.
    pub tail_error: Option<StoreError>,
}

impl RecoveryReport {
    /// Whether recovery had to repair anything (truncate a torn tail or
    /// skip a corrupt snapshot).
    pub fn repaired(&self) -> bool {
        self.tail_error.is_some() || !self.snapshots_skipped.is_empty()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = match self.snapshot_seq {
            Some(seq) => format!("recovered from snapshot@{seq}"),
            None => "recovered from base graph".to_string(),
        };
        s.push_str(&format!(", replayed {} frames", self.frames_replayed));
        if !self.snapshots_skipped.is_empty() {
            s.push_str(&format!(
                ", skipped {} corrupt snapshot(s)",
                self.snapshots_skipped.len()
            ));
        }
        if let Some(err) = &self.tail_error {
            s.push_str(&format!(
                ", truncated {}-byte torn tail ({err})",
                self.tail_truncated_bytes
            ));
        }
        s
    }
}

/// Counters a [`Durability`] handle accumulates; surfaced through
/// `ServerStats` so durability overhead is visible next to serve
/// timings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurabilityStats {
    /// Deltas appended to the commitlog through this handle.
    pub logged_deltas: usize,
    /// Bytes appended to the commitlog through this handle.
    pub logged_bytes: u64,
    /// fsyncs issued by the commitlog.
    pub fsyncs: u64,
    /// Snapshots published by this handle.
    pub snapshots_written: usize,
    /// Wall seconds spent appending (and fsyncing) log frames.
    pub log_wall_seconds: f64,
    /// Wall seconds spent compacting + publishing snapshots.
    pub snapshot_wall_seconds: f64,
    /// The recovery that produced this handle, when the data dir held
    /// prior state.
    pub recovery: Option<RecoveryReport>,
}

/// The state a reopened data dir restores, to be replayed by the
/// caller before serving resumes.
#[derive(Debug)]
pub struct RecoveredState {
    /// The recovered base graph (newest valid snapshot, or the caller's
    /// base when no snapshot loaded).
    pub graph: CsrGraph,
    /// Log-tail deltas to replay through `apply_update`, in log order.
    pub replay: Vec<GraphDelta>,
    /// The serve config blob the snapshot recorded (empty when no
    /// snapshot loaded). Callers compare it against their current
    /// config to detect a restart with changed flags.
    pub config: Vec<u8>,
}

/// A data dir's durability handle: write-ahead delta log + periodic
/// snapshots. See the [module docs](self).
#[derive(Debug)]
pub struct Durability {
    log: Commitlog,
    snapshots: SnapshotStore,
    /// Durability's own copy of the graph as of the last snapshot.
    graph: CsrGraph,
    /// Ops logged (or replayed) since the last snapshot, in arrival
    /// order — concatenation preserves last-wins resolution, so one
    /// compact over the accumulated delta equals compacting each delta
    /// in sequence.
    pending: GraphDelta,
    pending_frames: usize,
    config: Vec<u8>,
    opts: DurabilityOptions,
    stats: DurabilityStats,
}

fn fold_into(pending: &mut GraphDelta, delta: &GraphDelta) {
    for (u, v, w, insert) in delta.ops() {
        if insert {
            pending.insert_weighted(u, v, w);
        } else {
            pending.remove(u, v);
        }
    }
}

impl Durability {
    /// Opens (creating if needed) the data dir at `dir`.
    ///
    /// Fresh dir: seeds a `covers_seq = 0` snapshot of `base` and
    /// returns no recovered state. Existing dir: loads the newest valid
    /// snapshot + replays the log tail, returning a [`RecoveredState`]
    /// the caller must apply before serving, plus the
    /// [`RecoveryReport`] of everything recovery repaired. When every
    /// snapshot is corrupt, recovery falls back to `base` and replays
    /// the whole log.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the dir cannot be created or the log/seed
    /// snapshot cannot be written — corrupt *existing* state is
    /// handled (reported, fallen back from), not returned.
    pub fn open(
        dir: &Path,
        base: &CsrGraph,
        config: &[u8],
        opts: DurabilityOptions,
    ) -> Result<(Durability, Option<RecoveredState>, RecoveryReport), StoreError> {
        std::fs::create_dir_all(dir)?;
        let snapshots = SnapshotStore::new(dir, opts.retain);
        let (loaded, skipped) = snapshots.load_latest()?;
        let LogOpen { log, frames, tail } =
            Commitlog::open(&dir.join(crate::log::LOG_FILE), opts.fsync)?;

        let (tail_truncated_bytes, tail_error) = match tail {
            Some(TornTail {
                dropped_bytes,
                error,
            }) => (dropped_bytes, Some(error)),
            None => (0, None),
        };

        let had_prior_state = loaded.is_some() || !frames.is_empty() || !skipped.is_empty();
        let (graph, covers_seq, snapshot_seq, recovered_config) = match loaded {
            Some((g, SnapshotMeta { covers_seq, config })) => {
                (g, covers_seq, Some(covers_seq), config)
            }
            // No loadable snapshot: fall back to the caller's base and
            // replay the whole log.
            None => (base.clone(), 0, None, Vec::new()),
        };

        let replay: Vec<GraphDelta> = frames
            .into_iter()
            .filter(|&(seq, _)| seq >= covers_seq)
            .map(|(_, delta)| delta)
            .collect();

        let report = RecoveryReport {
            snapshot_seq,
            snapshots_skipped: skipped,
            frames_replayed: replay.len(),
            tail_truncated_bytes,
            tail_error,
        };

        let mut pending = GraphDelta::new();
        for delta in &replay {
            fold_into(&mut pending, delta);
        }

        let mut durable = Durability {
            log,
            snapshots,
            pending_frames: replay.len(),
            pending,
            config: config.to_vec(),
            opts,
            stats: DurabilityStats::default(),
            graph: graph.clone(),
        };

        if had_prior_state {
            durable.stats.recovery = Some(report.clone());
            Ok((
                durable,
                Some(RecoveredState {
                    graph,
                    replay,
                    config: recovered_config,
                }),
                report,
            ))
        } else {
            // Fresh dir: publish the seed snapshot so future recoveries
            // never need the original graph file.
            durable.checkpoint()?;
            Ok((durable, None, report))
        }
    }

    /// Write-ahead-logs one delta (fsync per policy) and, at the
    /// snapshot cadence, publishes a checkpoint. Call *before* applying
    /// the delta to the serving state.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the append or checkpoint hits an I/O
    /// failure — the delta must then be considered not applied.
    pub fn record(&mut self, delta: &GraphDelta) -> Result<u64, StoreError> {
        let started = Instant::now();
        let before = self.log.len_bytes();
        let seq = self.log.append(delta)?;
        self.stats.log_wall_seconds += started.elapsed().as_secs_f64();
        self.stats.logged_deltas += 1;
        self.stats.logged_bytes += self.log.len_bytes() - before;
        self.stats.fsyncs = self.log.fsyncs();
        fold_into(&mut self.pending, delta);
        self.pending_frames += 1;
        if self.opts.snapshot_every > 0 && self.pending_frames >= self.opts.snapshot_every {
            self.checkpoint()?;
        }
        Ok(seq)
    }

    /// Folds the pending deltas into Durability's graph copy and
    /// publishes a snapshot now, regardless of cadence; prunes old
    /// snapshots and trims the log below the oldest retained one.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on serialization or filesystem failures.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let started = Instant::now();
        // Everything logged so far is on disk before the snapshot that
        // supersedes it (matters under the batch fsync policy).
        self.log.sync()?;
        if !self.pending.is_empty() {
            // Consuming compact: the old adjacency is moved into the
            // rebuild instead of cloned next to it, so checkpointing a
            // 100M-edge graph never transiently doubles memory.
            let graph = std::mem::replace(&mut self.graph, CsrGraph::from_edges(0, &[]));
            self.graph = graph.compact_owned(&self.pending);
            self.pending = GraphDelta::new();
        }
        self.pending_frames = 0;
        let covers_seq = self.log.next_seq();
        self.snapshots
            .write(&self.graph, covers_seq, &self.config)?;
        self.stats.snapshots_written += 1;
        if let Some(oldest_retained) = self.snapshots.prune()? {
            self.log.trim_below(oldest_retained)?;
        }
        self.stats.fsyncs = self.log.fsyncs();
        self.stats.snapshot_wall_seconds += started.elapsed().as_secs_f64();
        Ok(())
    }

    /// Forces the log to disk (a no-op under [`FsyncPolicy::Always`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the fsync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.log.sync()?;
        self.stats.fsyncs = self.log.fsyncs();
        Ok(())
    }

    /// The sequence number the next recorded delta will carry.
    pub fn next_seq(&self) -> u64 {
        self.log.next_seq()
    }

    /// Accumulated counters (including the recovery report, when this
    /// handle came from a recovery).
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }

    /// The data dir this handle persists into.
    pub fn data_dir(&self) -> &Path {
        self.snapshots.dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_graph::{io, GraphBuilder};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("snaple-recover-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn base_graph() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    fn graph_bytes(g: &CsrGraph) -> Vec<u8> {
        let mut out = Vec::new();
        io::write_binary(g, &mut out).expect("encode");
        out
    }

    fn delta(i: u32) -> GraphDelta {
        let mut d = GraphDelta::new();
        d.insert(i % 5, 4 + i).remove(i % 5, (i + 1) % 5);
        d
    }

    #[test]
    fn fresh_open_seeds_a_snapshot() {
        let dir = tmp_dir("fresh");
        let base = base_graph();
        let (durable, recovered, report) =
            Durability::open(&dir, &base, b"cfg", DurabilityOptions::default()).expect("open");
        assert!(recovered.is_none());
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(durable.stats().snapshots_written, 1);
        // The seed snapshot alone is enough to recover from — even
        // with a *different* base passed on reopen.
        let other = CsrGraph::from_edges(2, &[(0, 1)]);
        let (_d2, recovered, report) =
            Durability::open(&dir, &other, b"cfg", DurabilityOptions::default()).expect("reopen");
        let rec = recovered.expect("recovers");
        assert_eq!(report.snapshot_seq, Some(0));
        assert_eq!(graph_bytes(&rec.graph), graph_bytes(&base));
        assert_eq!(rec.config, b"cfg");
        assert!(rec.replay.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concatenated_pending_compacts_like_sequential_deltas() {
        // The correctness keystone of snapshotting at cadence K > 1:
        // compacting one accumulated delta must equal compacting each
        // delta in sequence (last-wins over the concatenated op list).
        let base = base_graph();
        let deltas: Vec<GraphDelta> = (0..8).map(delta).collect();
        let mut sequential = base.clone();
        for d in &deltas {
            sequential = sequential.compact(d);
        }
        let mut folded = GraphDelta::new();
        for d in &deltas {
            fold_into(&mut folded, d);
        }
        let concatenated = base.compact(&folded);
        assert_eq!(graph_bytes(&sequential), graph_bytes(&concatenated));
    }

    #[test]
    fn record_snapshots_at_cadence_and_recovery_replays_the_tail() {
        let dir = tmp_dir("cadence");
        let base = base_graph();
        let opts = DurabilityOptions::default().snapshot_every(3).retain(2);
        let (mut durable, _, _) =
            Durability::open(&dir, &base, b"cfg", opts.clone()).expect("open");

        // 7 deltas: snapshots after #3 and #6, one frame in the tail.
        let mut oracle = base.clone();
        for i in 0..7 {
            durable.record(&delta(i)).expect("record");
            oracle = oracle.compact(&delta(i));
        }
        assert_eq!(durable.stats().snapshots_written, 3); // seed + 2 cadence
        assert_eq!(durable.stats().logged_deltas, 7);
        drop(durable);

        let (_d2, recovered, report) = Durability::open(&dir, &base, b"cfg", opts).expect("reopen");
        let rec = recovered.expect("recovers");
        assert_eq!(report.snapshot_seq, Some(6));
        assert_eq!(report.frames_replayed, 1);
        assert!(!report.repaired());
        // Snapshot graph + replay tail == the never-crashed state.
        let mut restored = rec.graph;
        for d in &rec.replay {
            restored = restored.compact(d);
        }
        assert_eq!(graph_bytes(&restored), graph_bytes(&oracle));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_with_longer_replay() {
        let dir = tmp_dir("fallback");
        let base = base_graph();
        let opts = DurabilityOptions::default().snapshot_every(2).retain(3);
        let (mut durable, _, _) =
            Durability::open(&dir, &base, b"cfg", opts.clone()).expect("open");
        let mut oracle = base.clone();
        for i in 0..4 {
            durable.record(&delta(i)).expect("record");
            oracle = oracle.compact(&delta(i));
        }
        drop(durable);

        // Corrupt the newest snapshot (covers_seq = 4).
        let snaps = SnapshotStore::new(&dir, 3).list().expect("list");
        let (&(newest_seq, ref newest_path), rest) = snaps.split_last().expect("snapshots");
        assert_eq!(newest_seq, 4);
        assert!(!rest.is_empty());
        let mut bytes = std::fs::read(newest_path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(newest_path, &bytes).expect("corrupt");

        let (_d2, recovered, report) = Durability::open(&dir, &base, b"cfg", opts).expect("reopen");
        let rec = recovered.expect("recovers");
        assert_eq!(
            report.snapshot_seq,
            Some(2),
            "fell back to the older snapshot"
        );
        assert_eq!(report.snapshots_skipped.len(), 1);
        assert_eq!(report.frames_replayed, 2, "longer replay covers the gap");
        assert!(report.repaired());
        let mut restored = rec.graph;
        for d in &rec.replay {
            restored = restored.compact(d);
        }
        assert_eq!(graph_bytes(&restored), graph_bytes(&oracle));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_snapshots_corrupt_falls_back_to_base_and_full_log() {
        let dir = tmp_dir("allcorrupt");
        let base = base_graph();
        // Never snapshot periodically: only the seed snapshot exists.
        let opts = DurabilityOptions::default().snapshot_every(0);
        let (mut durable, _, _) =
            Durability::open(&dir, &base, b"cfg", opts.clone()).expect("open");
        let mut oracle = base.clone();
        for i in 0..5 {
            durable.record(&delta(i)).expect("record");
            oracle = oracle.compact(&delta(i));
        }
        drop(durable);
        for (_, path) in SnapshotStore::new(&dir, 2).list().expect("list") {
            std::fs::write(&path, b"garbage").expect("corrupt");
        }

        let (_d2, recovered, report) = Durability::open(&dir, &base, b"cfg", opts).expect("reopen");
        let rec = recovered.expect("recovers");
        assert_eq!(report.snapshot_seq, None);
        assert_eq!(report.snapshots_skipped.len(), 1);
        assert_eq!(report.frames_replayed, 5);
        let mut restored = rec.graph;
        for d in &rec.replay {
            restored = restored.compact(d);
        }
        assert_eq!(graph_bytes(&restored), graph_bytes(&oracle));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_prunes_snapshots_and_trims_the_log() {
        let dir = tmp_dir("retention");
        let base = base_graph();
        let opts = DurabilityOptions::default().snapshot_every(2).retain(2);
        let (mut durable, _, _) =
            Durability::open(&dir, &base, b"cfg", opts.clone()).expect("open");
        let mut oracle = base.clone();
        for i in 0..10 {
            durable.record(&delta(i)).expect("record");
            oracle = oracle.compact(&delta(i));
        }
        drop(durable);

        let snaps = SnapshotStore::new(&dir, 2).list().expect("list");
        assert_eq!(snaps.len(), 2, "retention keeps 2 snapshots");
        // The log was trimmed below the oldest retained snapshot.
        let log = Commitlog::open(&dir.join(crate::log::LOG_FILE), FsyncPolicy::Always)
            .expect("open log");
        let oldest_retained = snaps.first().expect("non-empty").0;
        assert!(log.frames.iter().all(|&(seq, _)| seq >= oldest_retained));

        let (_d2, recovered, _) = Durability::open(&dir, &base, b"cfg", opts).expect("reopen");
        let rec = recovered.expect("recovers");
        let mut restored = rec.graph;
        for d in &rec.replay {
            restored = restored.compact(d);
        }
        assert_eq!(graph_bytes(&restored), graph_bytes(&oracle));
        std::fs::remove_dir_all(&dir).ok();
    }
}
