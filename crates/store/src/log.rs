//! The append-only delta commitlog.
//!
//! One frame per applied [`GraphDelta`], in the shard wire protocol's
//! framing style and with the shared [`snaple_graph::codec`] delta
//! encoding, so a logged delta is byte-identical to one sent to a
//! shard:
//!
//! ```text
//! ┌──────┬─────┬──────────┬──────────┬────────────────┬───────────┐
//! │ "SL" │ 'd' │ len: u32 │ seq: u64 │ delta ops      │ crc32: u32│
//! │ 2 B  │ 1 B │ LE       │ LE       │ (shared codec) │ LE        │
//! └──────┴─────┴──────────┴──────────┴────────────────┴───────────┘
//! ```
//!
//! The CRC-32 covers tag, length, and payload. `seq` is the frame's
//! monotonically increasing sequence number; snapshots record the first
//! seq they do *not* cover, so recovery replays exactly the frames a
//! snapshot misses.
//!
//! # Crash safety
//!
//! A crash mid-append leaves a torn tail: a partial frame, or a full
//! frame whose checksum does not match. [`Commitlog::open`] scans the
//! file frame by frame, stops at the first invalid byte, truncates the
//! file back to the last good frame boundary, and reports the typed
//! error plus the byte count dropped in a [`TornTail`] — it never
//! panics, and the next append continues from the clean boundary.
//!
//! Durability of an append is governed by [`FsyncPolicy`]: `Always`
//! fsyncs every frame (a crash loses at most the in-flight frame),
//! `Batch` fsyncs every [`BATCH_SYNC_EVERY`] frames and at every
//! snapshot (bounded loss window, much cheaper).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use snaple_graph::codec::{self, crc32};
use snaple_graph::GraphDelta;

use crate::StoreError;

/// The commitlog's file name inside a data dir.
pub const LOG_FILE: &str = "commitlog.bin";

/// The two magic bytes opening every frame (shared with the shard wire
/// protocol).
pub const MAGIC: [u8; 2] = *b"SL";

/// The delta frame tag. Outside the shard protocol's request/reply tag
/// ranges so a log frame misrouted onto the wire (or vice versa) is an
/// immediate `UnknownTag`, not a confused decode.
pub const TAG_DELTA_FRAME: u8 = b'd';

/// Upper bound on a frame's payload length (1 GiB), rejected before any
/// allocation — a corrupted length prefix is harmless.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Under [`FsyncPolicy::Batch`], fsync after this many appends.
pub const BATCH_SYNC_EVERY: usize = 32;

/// When the log must hit the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync every appended frame: a crash loses at most the frame
    /// being written.
    Always,
    /// fsync every [`BATCH_SYNC_EVERY`] frames and at every snapshot:
    /// a crash can lose the unsynced window, recovery still restores a
    /// consistent prefix.
    Batch,
}

impl FsyncPolicy {
    /// Parses the `--fsync` CLI value (`"always"` or `"batch"`).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            _ => None,
        }
    }
}

/// What a crash left behind at the end of the log: the typed error the
/// first invalid frame produced and how many bytes were truncated away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Bytes dropped from the end of the file.
    pub dropped_bytes: u64,
    /// Why the tail failed to decode.
    pub error: StoreError,
}

/// The result of opening a commitlog: the writable log positioned after
/// the last good frame, every good frame's `(seq, delta)`, and the torn
/// tail (if any) that was truncated away.
#[derive(Debug)]
pub struct LogOpen {
    /// The log, ready to append.
    pub log: Commitlog,
    /// All valid frames, in file (= seq) order.
    pub frames: Vec<(u64, GraphDelta)>,
    /// Present when a torn/corrupt tail was detected and truncated.
    pub tail: Option<TornTail>,
}

/// The append-only, checksummed delta log. See the [module docs](self).
#[derive(Debug)]
pub struct Commitlog {
    file: File,
    path: PathBuf,
    next_seq: u64,
    len_bytes: u64,
    policy: FsyncPolicy,
    unsynced: usize,
    appended: u64,
    fsyncs: u64,
}

/// One parsed frame boundary: `(offset, total_len, seq, delta)`.
type ParsedFrame = (u64, u64, u64, GraphDelta);

/// Scans `bytes` frame by frame. Returns the good frames and, when the
/// scan stopped before the end, the typed error that stopped it. The
/// good prefix ends at the last returned frame's `offset + total_len`.
fn scan_frames(bytes: &[u8]) -> (Vec<ParsedFrame>, Option<StoreError>) {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    let mut expected_seq: Option<u64> = None;
    loop {
        let rest = match bytes.get(offset..) {
            Some(r) if !r.is_empty() => r,
            _ => return (frames, None), // clean end on a frame boundary
        };
        // Header: magic (2) + tag (1) + len (4).
        let Some(head) = rest.get(..7) else {
            return (
                frames,
                Some(StoreError::Corrupt("truncated frame header".into())),
            );
        };
        let Some((magic, tag_len)) = head.split_first_chunk::<2>() else {
            return (
                frames,
                Some(StoreError::Corrupt("truncated frame header".into())),
            );
        };
        if *magic != MAGIC {
            return (frames, Some(StoreError::Corrupt("bad frame magic".into())));
        }
        let (Some(&tag), Some(len_bytes)) = (tag_len.first(), tag_len.get(1..5)) else {
            return (
                frames,
                Some(StoreError::Corrupt("truncated frame header".into())),
            );
        };
        if tag != TAG_DELTA_FRAME {
            return (
                frames,
                Some(StoreError::Corrupt("unknown frame tag".into())),
            );
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(len_bytes);
        let len = u32::from_le_bytes(len4);
        if len > MAX_FRAME_LEN {
            return (
                frames,
                Some(StoreError::Corrupt("frame length exceeds cap".into())),
            );
        }
        let total = 7usize.saturating_add(len as usize).saturating_add(4);
        let Some(frame) = rest.get(..total) else {
            return (frames, Some(StoreError::Corrupt("truncated frame".into())));
        };
        let (payload, crc_bytes) = (
            frame.get(7..7 + len as usize),
            frame.get(7 + len as usize..total),
        );
        let (Some(payload), Some(crc_bytes)) = (payload, crc_bytes) else {
            return (frames, Some(StoreError::Corrupt("truncated frame".into())));
        };
        let mut crc4 = [0u8; 4];
        crc4.copy_from_slice(crc_bytes);
        let expected = u32::from_le_bytes(crc4);
        let computed = match frame.get(2..7 + len as usize) {
            Some(checksummed) => crc32(0, checksummed),
            None => return (frames, Some(StoreError::Corrupt("truncated frame".into()))),
        };
        if expected != computed {
            return (
                frames,
                Some(StoreError::Corrupt("frame checksum mismatch".into())),
            );
        }
        // Payload: seq u64 + shared delta codec.
        let (Some(seq8), Some(mut ops)) = (payload.get(..8), payload.get(8..)) else {
            return (
                frames,
                Some(StoreError::Corrupt("frame payload too short".into())),
            );
        };
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(seq8);
        let seq = u64::from_le_bytes(seq_bytes);
        let delta = match codec::decode_delta(&mut ops) {
            Ok(d) if ops.is_empty() => d,
            Ok(_) => {
                return (
                    frames,
                    Some(StoreError::Corrupt("trailing frame payload bytes".into())),
                )
            }
            Err(e) => return (frames, Some(StoreError::Corrupt(e.to_string()))),
        };
        if let Some(expected_seq) = expected_seq {
            if seq != expected_seq {
                return (
                    frames,
                    Some(StoreError::Corrupt("non-monotonic frame seq".into())),
                );
            }
        }
        expected_seq = Some(seq.wrapping_add(1));
        frames.push((offset as u64, total as u64, seq, delta));
        offset = offset.saturating_add(total);
    }
}

impl Commitlog {
    /// Opens (creating if absent) the commitlog at `path`, scanning and
    /// validating every frame. A torn or corrupt tail is truncated back
    /// to the last good frame boundary and reported — never an error,
    /// never a panic. The returned log appends after the good prefix.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened, read, or
    /// truncated.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<LogOpen, StoreError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (parsed, tail_error) = scan_frames(&bytes);
        let good_len: u64 = parsed.last().map_or(0, |&(off, total, _, _)| off + total);
        let next_seq = parsed.last().map_or(0, |&(_, _, seq, _)| seq + 1);

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let tail = match tail_error {
            Some(error) => {
                let dropped_bytes = (bytes.len() as u64).saturating_sub(good_len);
                file.set_len(good_len)?;
                file.sync_data()?;
                Some(TornTail {
                    dropped_bytes,
                    error,
                })
            }
            None => None,
        };
        file.seek(SeekFrom::Start(good_len))?;

        let frames = parsed
            .into_iter()
            .map(|(_, _, seq, delta)| (seq, delta))
            .collect();
        Ok(LogOpen {
            log: Commitlog {
                file,
                path: path.to_path_buf(),
                next_seq,
                len_bytes: good_len,
                policy,
                unsynced: 0,
                appended: 0,
                fsyncs: 0,
            },
            frames,
            tail,
        })
    }

    /// Appends one delta as a checksummed frame and applies the fsync
    /// policy. Returns the frame's sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write or fsync fails; the log then
    /// ends on whatever the OS kept, which the next open's tail scan
    /// cleans up.
    pub fn append(&mut self, delta: &GraphDelta) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(12 + delta.len() * codec::OP_BYTES);
        payload.extend_from_slice(&seq.to_le_bytes());
        codec::encode_delta(&mut payload, delta);
        if payload.len() as u64 > MAX_FRAME_LEN as u64 {
            return Err(StoreError::Corrupt("delta frame exceeds length cap".into()));
        }
        let mut frame = Vec::with_capacity(7 + payload.len() + 4);
        frame.extend_from_slice(&MAGIC);
        frame.push(TAG_DELTA_FRAME);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = match frame.get(2..) {
            Some(checksummed) => crc32(0, checksummed),
            None => 0, // unreachable: frame always holds >= 7 bytes
        };
        frame.extend_from_slice(&crc.to_le_bytes());

        self.file.write_all(&frame)?;
        self.next_seq = seq + 1;
        self.len_bytes += frame.len() as u64;
        self.appended += 1;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Batch => {
                if self.unsynced >= BATCH_SYNC_EVERY {
                    self.sync()?;
                }
            }
        }
        Ok(seq)
    }

    /// Forces everything appended so far to disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the fsync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
            self.fsyncs += 1;
        }
        Ok(())
    }

    /// Drops every frame with `seq < keep_from` by rewriting the log
    /// (tmp + rename), called after snapshot retention pruning so the
    /// log never outgrows what the oldest retained snapshot needs.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn trim_below(&mut self, keep_from: u64) -> Result<(), StoreError> {
        self.sync()?;
        let bytes = std::fs::read(&self.path)?;
        let (parsed, _) = scan_frames(&bytes);
        let keep_offset = parsed
            .iter()
            .find(|&&(_, _, seq, _)| seq >= keep_from)
            .map_or(bytes.len() as u64, |&(off, _, _, _)| off);
        if keep_offset == 0 {
            return Ok(()); // nothing to trim
        }
        let tmp = self.path.with_extension("bin.tmp");
        {
            let mut out = File::create(&tmp)?;
            if let Some(kept) = bytes.get(keep_offset as usize..) {
                out.write_all(kept)?;
            }
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let len = file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.len_bytes = len;
        self.unsynced = 0;
        Ok(())
    }

    /// The sequence number the next appended frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current log size in bytes (good frames only).
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Frames appended through this handle (not counting recovered
    /// ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// fsyncs issued through this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("snaple-log-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn delta(i: u32) -> GraphDelta {
        let mut d = GraphDelta::new();
        d.insert(i, i + 1)
            .insert_weighted(i + 1, i, 0.5)
            .remove(i, 7);
        d
    }

    #[test]
    fn appends_then_reopens_with_identical_frames() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(LOG_FILE);
        let mut log = Commitlog::open(&path, FsyncPolicy::Always)
            .expect("open")
            .log;
        for i in 0..5 {
            let seq = log.append(&delta(i)).expect("append");
            assert_eq!(seq, i as u64);
        }
        assert_eq!(log.fsyncs(), 5);

        let reopened = Commitlog::open(&path, FsyncPolicy::Always).expect("reopen");
        assert!(reopened.tail.is_none());
        assert_eq!(reopened.frames.len(), 5);
        assert_eq!(reopened.log.next_seq(), 5);
        for (i, (seq, d)) in reopened.frames.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(
                d.ops().collect::<Vec<_>>(),
                delta(i as u32).ops().collect::<Vec<_>>()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_point_recovers_a_clean_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join(LOG_FILE);
        let mut boundaries = vec![0u64];
        {
            let mut log = Commitlog::open(&path, FsyncPolicy::Always)
                .expect("open")
                .log;
            for i in 0..4 {
                log.append(&delta(i)).expect("append");
                boundaries.push(log.len_bytes());
            }
        }
        let full = std::fs::read(&path).expect("read log");
        for cut in 0..full.len() as u64 {
            std::fs::write(&path, &full[..cut as usize]).expect("write cut");
            let opened = Commitlog::open(&path, FsyncPolicy::Always).expect("open cut");
            let expect_frames = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(opened.frames.len(), expect_frames, "cut at {cut}");
            if boundaries.contains(&cut) {
                assert!(opened.tail.is_none(), "cut at {cut} is a clean boundary");
            } else {
                let tail = opened.tail.expect("mid-frame cut must report a torn tail");
                assert!(tail.dropped_bytes > 0);
            }
            // The file was truncated back to the last good boundary...
            let healed = std::fs::metadata(&path).expect("metadata").len();
            assert_eq!(
                healed,
                boundaries
                    .iter()
                    .filter(|&&b| b <= cut)
                    .max()
                    .copied()
                    .unwrap_or(0)
            );
            // ...and appending continues from there.
            let mut log = opened.log;
            let next = log.append(&delta(9)).expect("append after heal");
            assert_eq!(next, expect_frames as u64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_byte_truncates_from_that_frame_on() {
        let dir = tmp_dir("corrupt");
        let path = dir.join(LOG_FILE);
        let second_frame_start = {
            let mut log = Commitlog::open(&path, FsyncPolicy::Batch)
                .expect("open")
                .log;
            log.append(&delta(0)).expect("append");
            let start = log.len_bytes() as usize;
            log.append(&delta(1)).expect("append");
            log.append(&delta(2)).expect("append");
            log.sync().expect("sync");
            start
        };
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[second_frame_start + 10] ^= 0xFF; // corrupt frame 1's payload
        std::fs::write(&path, &bytes).expect("write corrupt");

        let opened = Commitlog::open(&path, FsyncPolicy::Always).expect("open corrupt");
        assert_eq!(opened.frames.len(), 1, "only frame 0 survives");
        let tail = opened.tail.expect("corruption reported");
        assert!(matches!(tail.error, StoreError::Corrupt(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trim_below_keeps_a_suffix() {
        let dir = tmp_dir("trim");
        let path = dir.join(LOG_FILE);
        let mut log = Commitlog::open(&path, FsyncPolicy::Always)
            .expect("open")
            .log;
        for i in 0..6 {
            log.append(&delta(i)).expect("append");
        }
        log.trim_below(4).expect("trim");
        assert_eq!(log.next_seq(), 6);

        let reopened = Commitlog::open(&path, FsyncPolicy::Always).expect("reopen");
        assert!(reopened.tail.is_none());
        assert_eq!(
            reopened.frames.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(reopened.log.next_seq(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
