#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Durability for restartable serving: a delta commitlog, a snapshot
//! store, and crash recovery that stitches the two back together.
//!
//! Serving without this crate is ephemeral — a restart loses the graph,
//! every applied [`GraphDelta`](snaple_graph::GraphDelta), and all
//! stats. `snaple-store` gives a serving process a `--data-dir`:
//!
//! * [`log`] — an append-only **commitlog**. Every applied delta is one
//!   fsync'd, length-prefixed, CRC-32-checksummed frame (the same
//!   framing style and the same shared
//!   [`snaple_graph::codec`] delta encoding as the shard wire
//!   protocol). A torn or truncated tail — the signature of a crash
//!   mid-write — is detected on open and cleanly truncated away, never
//!   panicking.
//! * [`snapshot`] — versioned, checksummed binary checkpoints of the
//!   compacted graph plus the serve config, written after every K
//!   logged deltas and published atomically (tmp + rename). The last N
//!   snapshots are retained so a corrupt newest checkpoint falls back
//!   to an older one. The graph section is a verbatim raw
//!   [`snaple_graph::v2`] (`SNPLG2`) file — checkpoint **is** the
//!   serving layout, streamed out in bounded chunks, and recovery is an
//!   open with no per-edge re-encode; snapshots from pre-`SNPLG2`
//!   builds remain readable.
//! * [`recover`] — the [`Durability`] handle tying both together.
//!   Opening a data dir loads the newest *valid* snapshot and replays
//!   the log tail, reconstructing a state bit-identical to a server
//!   that never crashed (property-tested, including kill-at-random-
//!   byte and kill-mid-snapshot simulations).
//!
//! # Quickstart
//!
//! ```
//! use snaple_graph::{GraphBuilder, GraphDelta};
//! use snaple_store::{Durability, DurabilityOptions};
//!
//! let dir = std::env::temp_dir().join("snaple-store-doc");
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! let base = b.build();
//!
//! // First open: seeds the dir with a snapshot of the base graph.
//! let opts = DurabilityOptions::default().snapshot_every(2);
//! let (mut durable, recovered, _report) =
//!     Durability::open(&dir, &base, b"config-v1", opts.clone())?;
//! assert!(recovered.is_none(), "fresh dir: nothing to recover");
//!
//! let mut delta = GraphDelta::new();
//! delta.insert(0, 2);
//! durable.record(&delta)?; // logged (and fsync'd) before it is served
//!
//! // ... process crashes here; on restart:
//! let (_durable2, recovered, report) =
//!     Durability::open(&dir, &base, b"config-v1", opts)?;
//! let recovered = recovered.expect("prior state recovered");
//! assert_eq!(report.frames_replayed, 1);
//! assert_eq!(recovered.replay.len(), 1); // replay through apply_update
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), snaple_store::StoreError>(())
//! ```
//!
//! The serving integration lives in `snaple-core`
//! (`serve::Server::attach_durability`,
//! `concurrent::ConcurrentServer::run_prepared_durable`) and behind
//! `snaple-cli serve --data-dir DIR`; a server without a data dir pays
//! zero overhead.

use std::error::Error as StdError;
use std::fmt;

pub mod log;
pub mod recover;
pub mod snapshot;

pub use crate::log::{Commitlog, FsyncPolicy, LogOpen, TornTail};
pub use crate::recover::{
    Durability, DurabilityOptions, DurabilityStats, RecoveredState, RecoveryReport,
};
pub use crate::snapshot::{SnapshotMeta, SnapshotStore};

/// Everything that can go wrong in the store. Every variant is a typed,
/// non-panicking error; recovery folds the errors it *handled* (torn
/// tails, corrupt snapshots it fell back from) into a
/// [`RecoveryReport`] instead of returning them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying I/O failure (message of the `std::io::Error`).
    Io(String),
    /// Structural corruption: bad magic, unsupported version, a lying
    /// length, a checksum mismatch, or a malformed payload. The message
    /// names the file and field.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store i/o error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
        }
    }
}

impl StdError for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}
