//! Versioned, checksummed graph checkpoints with atomic publication.
//!
//! A snapshot freezes the compacted graph plus the serve config at a
//! log position:
//!
//! ```text
//! offset  0  magic      "SNPLSNAP"            8 B
//!         8  version    u32 LE                 (currently 1)
//!        12  flags      u32 LE                 (reserved, 0)
//!        16  covers_seq u64 LE                 first log seq NOT covered
//!        24  config_len u64 LE
//!        32  graph_len  u64 LE
//!        40  reserved   24 B                   (zero)
//!        64  config     config_len B
//!         …  padding    to an 8-byte boundary
//!         …  graph      graph_len B            snaple_graph::io binary
//!       end  crc32      u32 LE                 over every prior byte
//! ```
//!
//! # The graph section *is* the serving layout
//!
//! Since the `SNPLG2` rebase the embedded graph section is a verbatim
//! raw-flavor `SNPLG2` file (the on-disk CSR format of
//! [`snaple_graph::v2`]): checkpointing **streams** the CSR arrays to
//! disk through [`snaple_graph::v2::write_v2`] — its size is known up
//! front via [`snaple_graph::v2::encoded_len`], so nothing is buffered
//! beyond a 64 KiB chunk — and recovery decodes the same arrays back
//! with no per-edge re-encode. Snapshots written by older builds embed
//! a `SNPLG1` section instead; [`SnapshotStore::load`] auto-detects the
//! magic and reads both.
//!
//! Publication is atomic: the snapshot is written and fsync'd as
//! `*.tmp`, then renamed into place (`snapshot-<covers_seq>.snap`), so
//! a reader never observes a half-written file under the published
//! name — a crash mid-write leaves only a `*.tmp` that the next
//! [`SnapshotStore::prune`] sweeps away. Validation re-checks magic,
//! version, lengths and the trailing CRC-32 before trusting a byte, so
//! a corrupted snapshot is a typed [`StoreError`], never a panic —
//! recovery then falls back to the next older snapshot.

use std::fs::File;
use std::path::{Path, PathBuf};

use snaple_graph::codec::crc32;
use snaple_graph::{io, v2, CsrGraph, GraphStore};

use crate::StoreError;

/// Forwards writes while chaining a CRC-32 over every byte — what lets
/// [`SnapshotStore::write`] stream the graph section straight to the
/// file and still emit the trailing whole-file checksum.
struct CrcWriter<W> {
    inner: W,
    crc: u32,
    written: u64,
}

impl<W: std::io::Write> std::io::Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        // snaple-lint: allow(index) — n is the count the writer just accepted, so n <= buf.len()
        self.crc = crc32(self.crc, &buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The eight magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SNPLSNAP";

/// The current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Fixed header size; the config section starts here.
pub const HEADER_LEN: usize = 64;

/// Everything a snapshot carries besides the graph itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// The first commitlog sequence number this snapshot does *not*
    /// cover: recovery replays frames with `seq >= covers_seq`.
    pub covers_seq: u64,
    /// The serve configuration blob, verbatim.
    pub config: Vec<u8>,
}

/// Writes, lists, validates and prunes the `snapshot-*.snap` files of a
/// data dir. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    retain: usize,
}

fn snapshot_name(covers_seq: u64) -> String {
    format!("snapshot-{covers_seq:020}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    digits.parse().ok()
}

impl SnapshotStore {
    /// A store over `dir` retaining the newest `retain` snapshots
    /// (minimum 1).
    pub fn new(dir: &Path, retain: usize) -> SnapshotStore {
        SnapshotStore {
            dir: dir.to_path_buf(),
            retain: retain.max(1),
        }
    }

    /// All published snapshots, sorted by ascending `covers_seq`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, StoreError> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(seq) = name.to_str().and_then(parse_snapshot_name) {
                found.push((seq, entry.path()));
            }
        }
        found.sort_unstable_by_key(|&(seq, _)| seq);
        Ok(found)
    }

    /// Serializes and atomically publishes a snapshot covering log
    /// frames `< covers_seq`. Returns the published path.
    ///
    /// The graph section is streamed through
    /// [`snaple_graph::v2::write_v2`] in bounded chunks — a checkpoint
    /// never materializes a second copy of the adjacency in memory, so
    /// a 100M-edge snapshot costs the graph itself plus a 64 KiB
    /// buffer, not 3× the graph.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures; [`StoreError::Corrupt`]
    /// when the graph fails to serialize.
    pub fn write(
        &self,
        graph: &dyn GraphStore,
        covers_seq: u64,
        config: &[u8],
    ) -> Result<PathBuf, StoreError> {
        // The raw SNPLG2 size is exact and known up front, which is
        // what allows the header to precede the streamed section.
        let graph_len = v2::encoded_len(graph);
        let config_end = HEADER_LEN + config.len();
        let graph_start = config_end.div_ceil(8) * 8; // 8-byte-aligned graph section

        let mut head = Vec::with_capacity(graph_start);
        head.extend_from_slice(&SNAPSHOT_MAGIC);
        head.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes()); // flags
        head.extend_from_slice(&covers_seq.to_le_bytes());
        head.extend_from_slice(&(config.len() as u64).to_le_bytes());
        head.extend_from_slice(&graph_len.to_le_bytes());
        head.resize(HEADER_LEN, 0); // reserved
        head.extend_from_slice(config);
        head.resize(graph_start, 0); // alignment padding

        let path = self.dir.join(snapshot_name(covers_seq));
        let tmp = self.dir.join(format!("{}.tmp", snapshot_name(covers_seq)));
        {
            use std::io::Write as _;
            let mut out = CrcWriter {
                inner: File::create(&tmp)?,
                crc: 0,
                written: 0,
            };
            out.write_all(&head)?;
            v2::write_v2(graph, &mut out)
                .map_err(|e| StoreError::Corrupt(format!("snapshot graph encode: {e}")))?;
            if out.written != graph_start as u64 + graph_len {
                return Err(StoreError::Corrupt(format!(
                    "snapshot graph encode: wrote {} bytes where the header \
                     promised {graph_len}",
                    out.written - graph_start as u64
                )));
            }
            let crc = out.crc;
            let mut file = out.inner;
            file.write_all(&crc.to_le_bytes())?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        // Make the rename itself durable.
        if let Ok(dir) = File::open(&self.dir) {
            dir.sync_all().ok();
        }
        Ok(path)
    }

    /// Loads and fully validates the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read;
    /// [`StoreError::Corrupt`] on any structural or checksum failure.
    pub fn load(path: &Path) -> Result<(CsrGraph, SnapshotMeta), StoreError> {
        let bytes = std::fs::read(path)?;
        let name = path.display();
        if bytes.len() < HEADER_LEN + 4 {
            return Err(StoreError::Corrupt(format!("{name}: too short")));
        }
        let Some((body, crc_bytes)) = bytes.split_last_chunk::<4>() else {
            return Err(StoreError::Corrupt(format!("{name}: too short")));
        };
        let expected = u32::from_le_bytes(*crc_bytes);
        let computed = crc32(0, body);
        if expected != computed {
            return Err(StoreError::Corrupt(format!(
                "{name}: checksum mismatch (file says {expected:#010x}, computed {computed:#010x})"
            )));
        }
        let magic = body.get(..8);
        if magic != Some(SNAPSHOT_MAGIC.as_slice()) {
            return Err(StoreError::Corrupt(format!("{name}: bad magic")));
        }
        let field_u32 = |at: usize| -> Option<u32> {
            body.get(at..at + 4)
                .and_then(|b| b.try_into().ok())
                .map(u32::from_le_bytes)
        };
        let field_u64 = |at: usize| -> Option<u64> {
            body.get(at..at + 8)
                .and_then(|b| b.try_into().ok())
                .map(u64::from_le_bytes)
        };
        let version = field_u32(8);
        if version != Some(SNAPSHOT_VERSION) {
            return Err(StoreError::Corrupt(format!(
                "{name}: unsupported version {version:?}"
            )));
        }
        let (Some(covers_seq), Some(config_len), Some(graph_len)) =
            (field_u64(16), field_u64(24), field_u64(32))
        else {
            return Err(StoreError::Corrupt(format!("{name}: truncated header")));
        };
        let config_end = (HEADER_LEN as u64).saturating_add(config_len);
        let graph_start = config_end.div_ceil(8) * 8;
        let graph_end = graph_start.saturating_add(graph_len);
        if graph_end != body.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "{name}: section lengths disagree with file size"
            )));
        }
        let Some(config) = body.get(HEADER_LEN..config_end as usize) else {
            return Err(StoreError::Corrupt(format!("{name}: truncated config")));
        };
        let Some(graph_blob) = body.get(graph_start as usize..graph_end as usize) else {
            return Err(StoreError::Corrupt(format!("{name}: truncated graph")));
        };
        let graph = io::read_binary(graph_blob)
            .map_err(|e| StoreError::Corrupt(format!("{name}: graph decode: {e}")))?;
        Ok((
            graph,
            SnapshotMeta {
                covers_seq,
                config: config.to_vec(),
            },
        ))
    }

    /// Loads the newest snapshot that validates, walking older ones on
    /// failure. Returns the loaded state plus the `(path, error)` of
    /// every newer snapshot that was skipped; `None` when no snapshot
    /// loads.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be listed (missing
    /// dir counts as empty, not an error).
    #[allow(clippy::type_complexity)]
    pub fn load_latest(
        &self,
    ) -> Result<(Option<(CsrGraph, SnapshotMeta)>, Vec<(PathBuf, StoreError)>), StoreError> {
        let listed = match self.list() {
            Ok(l) => l,
            Err(StoreError::Io(_)) if !self.dir.exists() => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut skipped = Vec::new();
        for (_, path) in listed.into_iter().rev() {
            match Self::load(&path) {
                Ok(loaded) => return Ok((Some(loaded), skipped)),
                Err(e) => skipped.push((path, e)),
            }
        }
        Ok((None, skipped))
    }

    /// Deletes all but the newest `retain` snapshots and every stale
    /// `*.tmp` left by a crash mid-write. Returns the smallest retained
    /// `covers_seq` (`None` when no snapshot remains).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be listed; removal
    /// failures of individual files are ignored (they will be retried
    /// on the next prune).
    pub fn prune(&self) -> Result<Option<u64>, StoreError> {
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".snap.tmp") {
                std::fs::remove_file(entry.path()).ok();
            }
        }
        let listed = self.list()?;
        let drop_count = listed.len().saturating_sub(self.retain);
        for (_, path) in listed.iter().take(drop_count) {
            std::fs::remove_file(path).ok();
        }
        Ok(listed.get(drop_count).map(|&(seq, _)| seq))
    }

    /// The data dir this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_graph::GraphBuilder;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("snaple-snap-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn graph(extra: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, extra.max(3));
        b.build()
    }

    fn graph_bytes(g: &CsrGraph) -> Vec<u8> {
        let mut out = Vec::new();
        io::write_binary(g, &mut out).expect("encode");
        out
    }

    #[test]
    fn write_then_load_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let store = SnapshotStore::new(&dir, 2);
        let g = graph(5);
        let path = store.write(&g, 42, b"cfg").expect("write");
        let (loaded, meta) = SnapshotStore::load(&path).expect("load");
        assert_eq!(meta.covers_seq, 42);
        assert_eq!(meta.config, b"cfg");
        assert_eq!(graph_bytes(&loaded), graph_bytes(&g));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graph_section_is_aligned() {
        let dir = tmp_dir("align");
        let store = SnapshotStore::new(&dir, 2);
        for config in [&b""[..], b"x", b"seven b", b"eight by", b"longer config!!"] {
            let path = store.write(&graph(4), 1, config).expect("write");
            let bytes = std::fs::read(&path).expect("read");
            let config_end = HEADER_LEN + config.len();
            let graph_start = config_end.div_ceil(8) * 8;
            assert_eq!(graph_start % 8, 0);
            // The graph section must be a verbatim SNPLG2 file.
            assert_eq!(&bytes[graph_start..graph_start + 6], b"SNPLG2");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshots_with_v1_graph_sections_still_load() {
        // Snapshots written before the SNPLG2 rebase embed a SNPLG1
        // graph section; hand-assemble one and require `load` to read
        // it via the auto-detecting binary reader.
        let dir = tmp_dir("v1compat");
        let g = graph(6);
        let mut graph_blob = Vec::new();
        io::write_binary_v1(&g, &mut graph_blob).expect("v1 encode");
        let config = b"legacy-cfg";

        let config_end = HEADER_LEN + config.len();
        let graph_start = config_end.div_ceil(8) * 8;
        let mut buf = Vec::with_capacity(graph_start + graph_blob.len() + 4);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&17u64.to_le_bytes());
        buf.extend_from_slice(&(config.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(graph_blob.len() as u64).to_le_bytes());
        buf.resize(HEADER_LEN, 0);
        buf.extend_from_slice(config);
        buf.resize(graph_start, 0);
        buf.extend_from_slice(&graph_blob);
        let crc = crc32(0, &buf);
        buf.extend_from_slice(&crc.to_le_bytes());

        let path = dir.join("snapshot-00000000000000000017.snap");
        std::fs::write(&path, &buf).expect("write v1-era snapshot");

        let (loaded, meta) = SnapshotStore::load(&path).expect("load v1-era snapshot");
        assert_eq!(meta.covers_seq, 17);
        assert_eq!(meta.config, config);
        assert_eq!(graph_bytes(&loaded), graph_bytes(&g));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_corrupt_byte_is_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let store = SnapshotStore::new(&dir, 2);
        let path = store.write(&graph(9), 7, b"config").expect("write");
        let pristine = std::fs::read(&path).expect("read");
        for pos in 0..pristine.len() {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).expect("write corrupt");
            let err = SnapshotStore::load(&path).expect_err("corruption must fail");
            assert!(matches!(err, StoreError::Corrupt(_)), "pos {pos}: {err:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_latest_falls_back_over_corrupt_newest() {
        let dir = tmp_dir("fallback");
        let store = SnapshotStore::new(&dir, 3);
        store.write(&graph(3), 10, b"old").expect("write old");
        let newest = store.write(&graph(8), 20, b"new").expect("write new");
        // Corrupt the newest snapshot's graph section.
        let mut bytes = std::fs::read(&newest).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).expect("write corrupt");

        let (loaded, skipped) = store.load_latest().expect("load_latest");
        let (g, meta) = loaded.expect("older snapshot loads");
        assert_eq!(meta.covers_seq, 10);
        assert_eq!(meta.config, b"old");
        assert_eq!(graph_bytes(&g), graph_bytes(&graph(3)));
        assert_eq!(skipped.len(), 1);
        assert!(matches!(skipped[0].1, StoreError::Corrupt(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_retains_newest_and_sweeps_tmp_files() {
        let dir = tmp_dir("prune");
        let store = SnapshotStore::new(&dir, 2);
        for seq in [1u64, 2, 3, 4] {
            store.write(&graph(3), seq, b"c").expect("write");
        }
        // A crash mid-snapshot leaves a tmp file behind.
        std::fs::write(
            dir.join("snapshot-00000000000000000009.snap.tmp"),
            b"partial",
        )
        .expect("write tmp");
        let oldest = store.prune().expect("prune");
        assert_eq!(oldest, Some(3));
        let listed = store.list().expect("list");
        assert_eq!(
            listed.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(!dir.join("snapshot-00000000000000000009.snap.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
