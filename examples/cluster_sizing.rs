//! Cluster sizing: how deployment shape changes cost, not results.
//!
//! Runs the same SNAPLE workload on deployments from 1 to 32 machines and
//! reports simulated time, network traffic and replication factor — the
//! numbers an operator would look at before renting a cluster. Also
//! demonstrates the partitioner ablation (random vs greedy vertex-cuts).
//!
//! ```bash
//! cargo run --release --example cluster_sizing
//! ```

use snaple::core::{NamedScore, PredictRequest, Predictor, Snaple, SnapleConfig};
use snaple::eval::{metrics, HoldOut, TextTable};
use snaple::gas::{ClusterSpec, PartitionStrategy};
use snaple::graph::gen::datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = datasets::POKEC.emulate(0.01, 31);
    let holdout = HoldOut::remove_edges(&graph, 1, 8);
    println!(
        "pokec emulation: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!();

    let mut table = TextTable::new(vec![
        "machines",
        "cores",
        "partitioner",
        "replication",
        "net (MB)",
        "sim. time (s)",
        "recall@5",
    ]);

    for &nodes in &[1usize, 4, 8, 16, 32] {
        for strategy in [
            PartitionStrategy::RandomVertexCut,
            PartitionStrategy::GreedyVertexCut,
        ] {
            let cluster = ClusterSpec::type_i(nodes);
            let snaple = Snaple::new(
                SnapleConfig::new(NamedScore::LinearSum)
                    .klocal(Some(20))
                    .partition(strategy),
            );
            let p = Predictor::predict(&snaple, &PredictRequest::new(&holdout.train, &cluster))?;
            table.row(vec![
                nodes.to_string(),
                cluster.total_cores().to_string(),
                strategy.name().into(),
                format!("{:.2}", p.stats.replication_factor),
                format!("{:.1}", p.stats.total_network_bytes() as f64 / 1e6),
                format!("{:.1}", p.simulated_seconds()),
                format!("{:.3}", metrics::recall(&p, &holdout)),
            ]);
        }
    }

    println!("{}", table.render());
    println!("observations:");
    println!("  - recall is identical everywhere: distribution never changes results;");
    println!("  - greedy vertex-cuts lower the replication factor and with it traffic;");
    println!("  - past the sweet spot, extra machines buy little: per-step barrier");
    println!("    latency and mirror traffic eat the per-node compute savings.");
    Ok(())
}
