//! Quickstart: predict missing links on a small social graph, serve a
//! request stream against the same graph, then evaluate several scoring
//! configurations at once with a fused [`ScorePlan`](snaple::core::ScorePlan).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use snaple::core::serve::Server;
use snaple::core::{
    ExecuteRequest, NamedScore, PredictRequest, Predictor, PrepareRequest, QuerySet, ScorePlan,
    Snaple, SnapleConfig,
};
use snaple::eval::table::fmt_millis;
use snaple::eval::{metrics, HoldOut, TextTable};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get a graph. Here: an emulation of the paper's gowalla dataset at
    //    2% scale (~4k vertices). Swap in `snaple::graph::io::read_edge_list`
    //    to load your own edge list.
    let graph = datasets::GOWALLA.emulate(0.02, 42);
    println!(
        "graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Hold out one outgoing edge per vertex (the paper's protocol) so we
    //    can check prediction quality afterwards.
    let holdout = HoldOut::remove_edges(&graph, 1, 7);
    println!("held out {} edges for evaluation", holdout.num_removed());

    // 3. Configure SNAPLE: linearSum scoring (the paper's best all-round
    //    configuration), k = 5 predictions per vertex, klocal = 20.
    let config = SnapleConfig::new(NamedScore::LinearSum)
        .k(5)
        .klocal(Some(20))
        .thr_gamma(Some(200));
    let snaple = Snaple::new(config);

    // 4. Pick a (simulated) deployment: 4 of the paper's type-II machines.
    let cluster = ClusterSpec::type_ii(4);

    // 5. Predict: every backend answers the same PredictRequest — graph,
    //    cluster, and optionally a query subset (see who_to_follow.rs).
    let prediction = Predictor::predict(&snaple, &PredictRequest::new(&holdout.train, &cluster))?;

    // 6. Inspect results.
    let recall = metrics::recall(&prediction, &holdout);
    println!();
    println!("results");
    println!("  recall@5            {recall:.3}");
    println!(
        "  simulated time      {:.1}s on {} cores",
        prediction.simulated_seconds(),
        cluster.total_cores()
    );
    println!(
        "  network traffic     {:.1} MB",
        prediction.stats.total_network_bytes() as f64 / 1e6
    );
    println!(
        "  replication factor  {:.2}",
        prediction.stats.replication_factor
    );

    // Show a few concrete recommendations.
    println!();
    println!("sample predictions:");
    for (u, preds) in prediction.iter().filter(|(_, p)| !p.is_empty()).take(5) {
        let rendered: Vec<String> = preds.iter().map(|(z, s)| format!("{z} ({s:.2})")).collect();
        println!("  {u} -> {}", rendered.join(", "));
    }

    // 7. Serve a request stream: prepare once, execute many. A service
    //    answering "who to follow" for users as they come online should
    //    not rebuild the O(edges) partition per request — Server pays
    //    that setup once and coalesces concurrent requests into shared
    //    masked supersteps (rows stay bit-identical to one-shot runs).
    let mut server = Server::new(&snaple, &holdout.train, &cluster)?;
    let requests: Vec<QuerySet> = (0..20)
        .map(|i| QuerySet::sample(holdout.train.num_vertices(), 25, i))
        .collect();
    for chunk in requests.chunks(4) {
        server.serve_batch(chunk)?;
    }
    let stats = server.stats();
    println!();
    println!("serving a 20-request stream (25 users each, batches of 4):");
    let mut costs = TextTable::new(vec!["cost", "ms", "paid"]);
    costs.row(vec![
        "partition build (setup)".into(),
        fmt_millis(stats.partition_build_seconds),
        "once per stream".into(),
    ]);
    costs.row(vec![
        "prepare total (setup)".into(),
        fmt_millis(stats.setup_wall_seconds),
        "once per stream".into(),
    ]);
    costs.row(vec![
        "mean serve latency".into(),
        fmt_millis(stats.mean_latency_seconds()),
        "per request".into(),
    ]);
    println!("{}", costs.render());
    println!(
        "  {:.0} requests/s, coalescing {:.2}x",
        stats.throughput_rps(),
        stats.coalescing_factor()
    );

    // 8. Many scores, one sweep: a ScorePlan evaluates several scoring
    //    configurations in ONE fused traversal — each column is
    //    bit-identical to running that configuration alone, at roughly
    //    one run's gather cost instead of four. Specs parse from compact
    //    strings (see the snaple_core::spec grammar).
    let plan = ScorePlan::parse("linearSum, counter, PPR, jaccard@agg=max")?;
    let prepared = plan.prepare_plan(&PrepareRequest::new(&holdout.train, &cluster))?;
    let matrix = prepared.execute_matrix(&ExecuteRequest::new())?;
    println!();
    println!("four configurations, one fused sweep:");
    let mut sweep = TextTable::new(vec!["score", "recall@5"]);
    for col in 0..matrix.num_columns() {
        sweep.row(vec![
            matrix.labels()[col].clone(),
            format!("{:.3}", metrics::recall(&matrix.column(col), &holdout)),
        ]);
    }
    println!("{}", sweep.render());
    println!(
        "  {} gather calls for all {} columns (a per-config run pays that EACH)",
        matrix
            .stats
            .steps
            .iter()
            .map(|s| s.gather_calls)
            .sum::<u64>(),
        matrix.num_columns()
    );
    Ok(())
}
