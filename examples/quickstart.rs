//! Quickstart: predict missing links on a small social graph.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use snaple::core::{PredictRequest, Predictor, ScoreSpec, Snaple, SnapleConfig};
use snaple::eval::{metrics, HoldOut};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Get a graph. Here: an emulation of the paper's gowalla dataset at
    //    2% scale (~4k vertices). Swap in `snaple::graph::io::read_edge_list`
    //    to load your own edge list.
    let graph = datasets::GOWALLA.emulate(0.02, 42);
    println!(
        "graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Hold out one outgoing edge per vertex (the paper's protocol) so we
    //    can check prediction quality afterwards.
    let holdout = HoldOut::remove_edges(&graph, 1, 7);
    println!("held out {} edges for evaluation", holdout.num_removed());

    // 3. Configure SNAPLE: linearSum scoring (the paper's best all-round
    //    configuration), k = 5 predictions per vertex, klocal = 20.
    let config = SnapleConfig::new(ScoreSpec::LinearSum)
        .k(5)
        .klocal(Some(20))
        .thr_gamma(Some(200));
    let snaple = Snaple::new(config);

    // 4. Pick a (simulated) deployment: 4 of the paper's type-II machines.
    let cluster = ClusterSpec::type_ii(4);

    // 5. Predict: every backend answers the same PredictRequest — graph,
    //    cluster, and optionally a query subset (see who_to_follow.rs).
    let prediction = Predictor::predict(&snaple, &PredictRequest::new(&holdout.train, &cluster))?;

    // 6. Inspect results.
    let recall = metrics::recall(&prediction, &holdout);
    println!();
    println!("results");
    println!("  recall@5            {recall:.3}");
    println!(
        "  simulated time      {:.1}s on {} cores",
        prediction.simulated_seconds(),
        cluster.total_cores()
    );
    println!(
        "  network traffic     {:.1} MB",
        prediction.stats.total_network_bytes() as f64 / 1e6
    );
    println!(
        "  replication factor  {:.2}",
        prediction.stats.replication_factor
    );

    // Show a few concrete recommendations.
    println!();
    println!("sample predictions:");
    for (u, preds) in prediction.iter().filter(|(_, p)| !p.is_empty()).take(5) {
        let rendered: Vec<String> = preds.iter().map(|(z, s)| format!("{z} ({s:.2})")).collect();
        println!("  {u} -> {}", rendered.join(", "));
    }
    Ok(())
}
