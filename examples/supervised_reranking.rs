//! Supervised re-ranking: the paper's §7 future-work direction in action.
//!
//! Trains a logistic model over a panel of unsupervised SNAPLE scores
//! (linearSum, counter, PPR, euclSum + degree features) and compares its
//! recall against each individual configuration.
//!
//! ```bash
//! cargo run --release --example supervised_reranking
//! ```

use snaple::core::{NamedScore, PredictRequest, Predictor, Snaple, SnapleConfig};
use snaple::eval::{metrics, HoldOut, TextTable};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::supervised::{SupervisedConfig, SupervisedSnaple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = datasets::GOWALLA.emulate(0.02, 123);
    let eval = HoldOut::remove_edges(&graph, 1, 7);
    let cluster = ClusterSpec::type_ii(4);
    println!(
        "gowalla emulation: {} vertices, {} edges, {} held-out for evaluation",
        graph.num_vertices(),
        graph.num_edges(),
        eval.num_removed()
    );
    println!();

    let mut table = TextTable::new(vec!["predictor", "recall@5"]);

    // The unsupervised panel members, individually.
    for spec in [
        NamedScore::LinearSum,
        NamedScore::Counter,
        NamedScore::Ppr,
        NamedScore::EuclSum,
    ] {
        let p = Predictor::predict(
            &Snaple::new(SnapleConfig::new(spec).klocal(Some(20))),
            &PredictRequest::new(&eval.train, &cluster),
        )?;
        table.row(vec![
            spec.name().into(),
            format!("{:.3}", metrics::recall(&p, &eval)),
        ]);
    }

    // The supervised combination. Training holds out a *second* batch of
    // edges from the training graph for labels — the evaluation edges stay
    // untouched.
    let model =
        SupervisedSnaple::new(SupervisedConfig::new().seed(123)).train(&eval.train, &cluster)?;
    let p = Predictor::predict(&model, &PredictRequest::new(&eval.train, &cluster))?;
    table.row(vec![
        "supervised (logistic over panel)".into(),
        format!("{:.3}", metrics::recall(&p, &eval)),
    ]);

    println!("{}", table.render());
    println!("learned weights (standardized feature space):");
    for (name, w) in model.weights() {
        println!("  {name:<22} {w:+.3}");
    }
    Ok(())
}
