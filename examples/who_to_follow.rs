//! Who-to-Follow: account recommendation on a Twitter-like follower graph.
//!
//! The paper motivates SNAPLE with exactly this workload — Twitter moved
//! its Who-to-Follow service from a single machine (Cassovary) to a
//! distributed deployment (§2.2, [12]). This example compares the two
//! approaches head-to-head on an emulated follower graph, reproducing the
//! spirit of the paper's Table 6 on example scale.
//!
//! ```bash
//! cargo run --release --example who_to_follow
//! ```

use snaple::cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple::core::serve::Server;
use snaple::core::{NamedScore, PredictRequest, Predictor, QuerySet, Snaple, SnapleConfig};
use snaple::eval::table::fmt_millis;
use snaple::eval::{metrics, HoldOut, TextTable};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An emulation of the twitter-rv follower graph at 1/5000 scale:
    // ~8k accounts, ~290k follow edges, low reciprocity, heavy-tailed
    // follower counts.
    let graph = datasets::TWITTER_RV.emulate(0.0002, 2024);
    println!(
        "follower graph: {} accounts, {} follow edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Hide one followed account per user; a good recommender should surface
    // it again.
    let holdout = HoldOut::remove_edges(&graph, 1, 99);
    println!("hidden follows: {}", holdout.num_removed());
    println!();

    let mut table = TextTable::new(vec![
        "recommender",
        "deployment",
        "recall@5",
        "sim. time (s)",
    ]);

    // Contender 1: single-machine random-walk PPR (the Cassovary way).
    let machine = ClusterSpec::single_machine(20, 128 << 30);
    let ppr = RandomWalkPpr::new(RandomWalkConfig::new().walks(100).depth(3).k(5));
    let walks = Predictor::predict(&ppr, &PredictRequest::new(&holdout.train, &machine))?;
    table.row(vec![
        "random-walk PPR (w=100, d=3)".into(),
        "1 machine, 20 cores".into(),
        format!("{:.3}", metrics::recall(&walks, &holdout)),
        format!("{:.1}", walks.simulated_seconds()),
    ]);

    // Contender 2: SNAPLE on the same single machine.
    let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
    let single = Predictor::predict(&snaple, &PredictRequest::new(&holdout.train, &machine))?;
    table.row(vec![
        "SNAPLE linearSum (klocal=20)".into(),
        "1 machine, 20 cores".into(),
        format!("{:.3}", metrics::recall(&single, &holdout)),
        format!("{:.1}", single.simulated_seconds()),
    ]);

    // Contender 3: SNAPLE scaled out to 8 machines.
    let cluster = ClusterSpec::type_ii(8);
    let distributed = Predictor::predict(&snaple, &PredictRequest::new(&holdout.train, &cluster))?;
    table.row(vec![
        "SNAPLE linearSum (klocal=20)".into(),
        "8 machines, 160 cores".into(),
        format!("{:.3}", metrics::recall(&distributed, &holdout)),
        format!("{:.1}", distributed.simulated_seconds()),
    ]);

    println!("{}", table.render());
    println!(
        "note: SNAPLE's predictions are identical on both deployments — the \
         engine guarantees distribution does not change results."
    );

    // Show recommendations for the most-followed account's followers.
    let celebrity = holdout
        .train
        .vertices()
        .max_by_key(|&u| holdout.train.in_degree(u))
        .expect("nonempty graph");
    println!();
    println!(
        "most-followed account: {celebrity} ({} followers)",
        holdout.train.in_degree(celebrity)
    );
    if let Some(follower) = holdout.train.in_neighbors(celebrity).first() {
        let recs = distributed.for_vertex(*follower);
        println!("recommendations for one of its followers ({follower}):");
        for (z, score) in recs {
            println!("  follow {z}  (score {score:.3})");
        }
    }

    // --- Serving mode: a stream of requests from users coming online. ----
    //
    // A production Who-to-Follow deployment does not refresh every account
    // on every request — it answers for the users who are active, as they
    // arrive. `Server` prepares the heavy state (the vertex-cut partition
    // of the follower graph) once, then coalesces concurrent requests into
    // shared masked superstep runs. Every served row is bit-identical to
    // the batch run above.
    let mut server = Server::new(&snaple, &holdout.train, &cluster)?;
    let requests: Vec<QuerySet> = (0..30)
        .map(|wave| QuerySet::sample(holdout.train.num_vertices(), 40, 7 + wave))
        .collect();
    for wave in requests.chunks(6) {
        let responses = server.serve_batch(wave)?;
        for (request, response) in wave.iter().zip(&responses) {
            for user in request.iter() {
                assert_eq!(response.for_vertex(user), distributed.for_vertex(user));
            }
        }
    }
    let stats = server.stats();
    println!();
    println!(
        "serving mode: {} requests of 40 active users each, coalesced into \
         {} shared runs — all rows identical to the batch run",
        stats.requests, stats.batches
    );
    let mut costs = TextTable::new(vec!["cost", "ms", "paid"]);
    costs.row(vec![
        "partition build (setup)".into(),
        fmt_millis(stats.partition_build_seconds),
        "once per stream".into(),
    ]);
    costs.row(vec![
        "mean serve latency".into(),
        fmt_millis(stats.mean_latency_seconds()),
        "per request".into(),
    ]);
    println!("{}", costs.render());
    println!(
        "  {:.0} requests/s served, coalescing factor {:.2}x",
        stats.throughput_rps(),
        stats.coalescing_factor()
    );
    Ok(())
}
