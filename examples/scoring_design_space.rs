//! Tour of SNAPLE's scoring design space — as ONE fused score plan.
//!
//! The paper's Table 3 spans eleven scoring configurations from three
//! similarities, five combinators and three aggregators. Before the
//! [`ScorePlan`](snaple::core::ScorePlan) redesign this sweep paid eleven
//! full GAS traversals; now the whole design space is a single
//! declarative plan compiled to one fused sweep — every column
//! bit-identical to a standalone run.
//!
//! The example also goes beyond the paper with spec-string columns the
//! grammar makes one-liners: a cosine/max configuration, a weighted
//! kernel blend, and a fully custom component triple plugged in
//! programmatically.
//!
//! ```bash
//! cargo run --release --example scoring_design_space
//! ```

use std::sync::Arc;

use snaple::core::{
    aggregator, combinator, similarity, ExecuteRequest, NamedScore, PrepareRequest,
    ScoreComponents, ScorePlan, ScoreSpec,
};
use snaple::eval::{metrics, HoldOut, TextTable};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = datasets::LIVEJOURNAL.emulate(0.002, 11);
    let holdout = HoldOut::remove_edges(&graph, 1, 5);
    let cluster = ClusterSpec::type_ii(4);
    println!(
        "livejournal emulation: {} vertices, {} edges, {} held-out",
        graph.num_vertices(),
        graph.num_edges(),
        holdout.num_removed()
    );
    println!();

    // The paper's Table 3, row by row — plus three beyond-the-paper
    // columns. Every named configuration and spec string is one column
    // of ONE plan; the custom triple shows the programmatic route.
    let mut specs: Vec<ScoreSpec> = NamedScore::all().map(ScoreSpec::named).to_vec();
    specs.push(ScoreSpec::parse("jaccard@agg=max")?);
    specs.push(ScoreSpec::parse("cosine*0.7+common")?);
    specs.push(ScoreSpec::from_components(
        "cosineGeomMax*",
        ScoreComponents {
            name: "cosineGeomMax".into(),
            similarity: Arc::new(similarity::Cosine),
            selection_similarity: Arc::new(similarity::Jaccard),
            combinator: Arc::new(combinator::Geometric),
            aggregator: Arc::new(aggregator::Max),
        },
    ));
    let plan = ScorePlan::new(specs)?;

    // One partition build, one fused sweep, fourteen score columns.
    let prepared = plan.prepare_plan(&PrepareRequest::new(&holdout.train, &cluster))?;
    let matrix = prepared.execute_matrix(&ExecuteRequest::new())?;

    let mut table = TextTable::new(vec!["score", "sim", "⊗", "⊕", "recall@5", "column ops"]);
    for (col, spec) in plan.specs().iter().enumerate() {
        let components = spec.components();
        table.row(vec![
            matrix.labels()[col].clone(),
            components.similarity.name().into(),
            components.combinator.name().into(),
            components.aggregator.name().into(),
            format!("{:.3}", metrics::recall(&matrix.column(col), &holdout)),
            matrix.column_work_ops(col).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("* custom component triple — not expressible as a spec string");
    println!();

    let gathers: u64 = matrix.stats.steps.iter().map(|s| s.gather_calls).sum();
    println!(
        "the whole design space cost ONE fused sweep: {gathers} gather calls, \
         {} work ops — a per-configuration run pays ~{gathers} gathers EACH",
        matrix.stats.total_work_ops(),
    );
    Ok(())
}
