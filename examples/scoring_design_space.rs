//! Tour of SNAPLE's scoring design space — including a custom metric.
//!
//! The paper's Table 3 spans eleven scoring configurations from three
//! similarities, five combinators and three aggregators. This example
//! sweeps all of them on one dataset and then goes beyond the paper by
//! plugging a *user-defined* scoring configuration (cosine similarity,
//! geometric combinator, max aggregator) into the same framework.
//!
//! ```bash
//! cargo run --release --example scoring_design_space
//! ```

use std::sync::Arc;

use snaple::core::{
    aggregator, combinator, similarity, PredictRequest, Predictor, ScoreComponents, ScoreSpec,
    Snaple, SnapleConfig,
};
use snaple::eval::{metrics, HoldOut, TextTable};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = datasets::LIVEJOURNAL.emulate(0.002, 11);
    let holdout = HoldOut::remove_edges(&graph, 1, 5);
    let cluster = ClusterSpec::type_ii(4);
    println!(
        "livejournal emulation: {} vertices, {} edges, {} held-out",
        graph.num_vertices(),
        graph.num_edges(),
        holdout.num_removed()
    );
    println!();

    let mut table = TextTable::new(vec!["score", "sim", "⊗", "⊕", "recall@5"]);

    // The paper's Table 3, row by row.
    for spec in ScoreSpec::all() {
        let snaple = Snaple::new(SnapleConfig::new(spec).klocal(Some(20)));
        let components = snaple.components().clone();
        let prediction =
            Predictor::predict(&snaple, &PredictRequest::new(&holdout.train, &cluster))?;
        table.row(vec![
            spec.name().into(),
            components.similarity.name().into(),
            components.combinator.name().into(),
            components.aggregator.name().into(),
            format!("{:.3}", metrics::recall(&prediction, &holdout)),
        ]);
    }

    // Beyond Table 3: a custom configuration assembled from parts.
    let custom = ScoreComponents {
        name: "cosineGeomMax".into(),
        similarity: Arc::new(similarity::Cosine),
        selection_similarity: Arc::new(similarity::Cosine),
        combinator: Arc::new(combinator::Geometric),
        aggregator: Arc::new(aggregator::Max),
    };
    let snaple = Snaple::with_components(
        SnapleConfig::new(ScoreSpec::LinearSum).klocal(Some(20)),
        custom,
    );
    let prediction = Predictor::predict(&snaple, &PredictRequest::new(&holdout.train, &cluster))?;
    table.row(vec![
        "cosineGeomMax*".into(),
        "cosine".into(),
        "geom".into(),
        "Max".into(),
        format!("{:.3}", metrics::recall(&prediction, &holdout)),
    ]);

    println!("{}", table.render());
    println!("* custom configuration — not part of the paper's Table 3");
    Ok(())
}
